"""Farm telemetry: FleetView folding, rendering, and the event/trace flow."""

import io

import numpy as np
import pytest

from repro.farm import FleetView, JobSpec, LiveRenderer, SimulationFarm, render_fleet
from repro.farm.worker import run_job
from repro.trace import Tracer, set_tracer


def make_jobs(n, **kwargs):
    base = dict(grid_size=16, steps=3)
    base.update(kwargs)
    return [JobSpec(job_id=f"job-{i}", seed=10 + i, **base) for i in range(n)]


class TestFleetView:
    def test_expect_registers_pending_jobs(self):
        fleet = FleetView()
        fleet.expect(["a", "b"], {"a": 10, "b": 20})
        views = {v.job_id: v for v in fleet.jobs()}
        assert views["a"].state == "pending"
        assert views["a"].steps_total == 10
        assert views["b"].steps_total == 20

    def test_job_start_marks_running(self):
        fleet = FleetView()
        fleet.observe({"type": "job_start", "job_id": "a", "step": 0,
                       "steps_total": 8, "solver": "pcg", "pid": 123, "attempt": 0})
        (view,) = fleet.jobs()
        assert view.state == "running"
        assert view.solver == "pcg"
        assert view.pid == 123

    def test_heartbeat_updates_progress_and_promotes_pending(self):
        fleet = FleetView()
        fleet.expect(["a"], {"a": 8})
        fleet.observe({"type": "heartbeat", "job_id": "a", "step": 5,
                       "steps_total": 8, "divnorm": 0.25})
        (view,) = fleet.jobs()
        assert view.state == "running"
        assert view.step == 5
        assert view.progress == pytest.approx(5 / 8)
        assert view.divnorm == 0.25

    def test_fallback_and_terminal_states(self):
        fleet = FleetView()
        fleet.observe({"type": "job_start", "job_id": "a", "steps_total": 4})
        fleet.observe({"type": "pcg_fallback", "job_id": "a", "step": 2})
        assert fleet.jobs()[0].state == "degraded"
        fleet.observe({"type": "job_end", "job_id": "a", "step": 4,
                       "status": "completed"})
        assert fleet.jobs()[0].state == "completed"
        fleet.observe({"type": "job_end", "job_id": "b", "status": "failed"})
        assert fleet.counts() == {"completed": 1, "failed": 1}

    def test_event_without_job_id_is_ignored(self):
        fleet = FleetView()
        fleet.observe({"type": "heartbeat"})
        assert fleet.jobs() == []
        assert fleet.events_seen == 0

    def test_to_dict_snapshot(self):
        fleet = FleetView()
        fleet.observe({"type": "job_start", "job_id": "a", "steps_total": 2})
        snap = fleet.to_dict()
        assert snap["events_seen"] == 1
        assert snap["jobs"][0]["job_id"] == "a"


class TestRendering:
    def test_render_fleet_lists_every_job(self):
        fleet = FleetView()
        fleet.expect(["idle"], {"idle": 4})
        fleet.observe({"type": "heartbeat", "job_id": "busy", "step": 3,
                       "steps_total": 4, "divnorm": 0.5, "solver": "nn"})
        text = render_fleet(fleet, now=100.0)
        assert "busy" in text and "idle" in text
        assert "running:1" in text and "pending:1" in text
        assert "3/4" in text
        # pending job has no divnorm yet -> placeholder, not nan
        assert "nan" not in text

    def test_live_renderer_paints_final_frame(self):
        fleet = FleetView()
        fleet.observe({"type": "job_end", "job_id": "a", "status": "completed"})
        stream = io.StringIO()
        with LiveRenderer(fleet, interval=60.0, stream=stream):
            pass  # no periodic tick fires; stop() paints the final frame
        out = stream.getvalue()
        assert "completed:1" in out

    def test_counters_render_in_the_header(self):
        fleet = FleetView()
        fleet.bump("admission_rejects")
        fleet.bump("cache_hits", 3)
        text = render_fleet(fleet, now=0.0)
        header = text.splitlines()[0]
        assert "admission_rejects:1" in header
        assert "cache_hits:3" in header
        # no counters -> no separator noise
        assert "|" not in render_fleet(FleetView(), now=0.0).splitlines()[0]

    def test_pcg_fallback_events_bump_the_fleet_counter(self):
        fleet = FleetView()
        fleet.observe({"type": "pcg_fallback", "job_id": "a"})
        fleet.observe({"type": "pcg_fallback", "job_id": "b"})
        assert fleet.counters()["pcg_fallbacks"] == 2
        assert fleet.to_dict()["counters"]["pcg_fallbacks"] == 2

    def test_resume_events_bump_the_fleet_counter(self):
        """The ``repro top`` SLO panel samples this counter live; it must
        move while jobs run, not only after the farm merges results."""
        fleet = FleetView()
        fleet.observe({"type": "resume", "job_id": "a", "step": 4})
        fleet.observe({"type": "resume", "job_id": "a", "step": 8})
        assert fleet.counters()["resumes"] == 2

    def test_narrow_terminal_truncates_instead_of_crashing(self):
        fleet = FleetView()
        fleet.bump("cache_hits", 99)
        fleet.observe({"type": "heartbeat", "job_id": "job-with-a-long-name",
                       "step": 3, "steps_total": 4, "divnorm": 0.5, "solver": "nn"})
        for width in (8, 20, 40):
            text = render_fleet(fleet, now=100.0, width=width)
            assert all(len(line) <= width for line in text.splitlines())
        # a degenerate width is clamped, not an exception
        assert render_fleet(fleet, now=100.0, width=0)

    def test_live_renderer_alerts_panel_is_crash_proof(self):
        fleet = FleetView()
        fleet.observe({"type": "job_end", "job_id": "a", "status": "completed"})
        calls = []

        def alerts():
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("slo engine hiccup")
            return ["[critical] job_failure_ratio: burn 12x"]

        stream = io.StringIO()
        renderer = LiveRenderer(fleet, interval=60.0, stream=stream, alerts_fn=alerts)
        renderer._paint()  # first call raises inside alerts_fn: swallowed
        renderer._paint()
        out = stream.getvalue()
        assert "alerts:" in out
        assert "[critical] job_failure_ratio" in out


class TestFarmEventFlow:
    def test_serial_farm_streams_events_and_fills_fleet(self):
        events = []
        farm = SimulationFarm(backend="serial", on_event=events.append,
                              heartbeat_seconds=0.0)
        report = farm.run(make_jobs(2))
        assert len(report.completed) == 2
        types = [e["type"] for e in events]
        assert types.count("job_start") == 2
        assert types.count("job_end") == 2
        # heartbeat_seconds=0 -> every step beats
        assert types.count("heartbeat") == 6
        assert farm.fleet.counts() == {"completed": 2}
        for event in events:
            assert event["job_id"].startswith("job-")
            assert "t" in event and "pid" in event

    def test_serial_farm_trace_records_job_spans_and_events(self):
        farm = SimulationFarm(backend="serial", trace=True)
        farm.run(make_jobs(2))
        spans = {s.name for s in farm.tracer.spans()}
        assert {"job", "step", "projection"} <= spans
        job_spans = [s for s in farm.tracer.spans() if s.name == "job"]
        assert {s.attrs["job_id"] for s in job_spans} == {"job-0", "job-1"}
        assert len(farm.tracer.events("job_end")) == 2
        assert len(farm.tracer.events("divnorm")) == 6

    def test_process_farm_ships_and_merges_worker_traces(self, tmp_path):
        farm = SimulationFarm(workers=2, backend="process", trace=True,
                              checkpoint_dir=tmp_path, heartbeat_seconds=0.0)
        report = farm.run(make_jobs(2, checkpoint_every=1))
        assert len(report.completed) == 2
        job_spans = [s for s in farm.tracer.spans() if s.name == "job"]
        assert {s.attrs["job_id"] for s in job_spans} == {"job-0", "job-1"}
        # checkpoint events crossed the process boundary into the fleet trace
        assert len(farm.tracer.events("checkpoint")) == 6
        assert farm.fleet.counts() == {"completed": 2}

    def test_tracing_disabled_farm_still_heartbeats(self):
        events = []
        farm = SimulationFarm(backend="serial", on_event=events.append,
                              heartbeat_seconds=0.0)
        assert farm.tracer.enabled is False
        farm.run(make_jobs(1))
        assert any(e["type"] == "heartbeat" for e in events)
        assert farm.tracer.spans() == []


class TestTraceAcrossCheckpointResume:
    def test_stitched_trace_covers_every_step_exactly_once(self, tmp_path):
        """Trace round-trip through a farm checkpoint resume (satellite check).

        Run a job halfway, then re-run it to completion from its checkpoint.
        The two attempts' traces, merged, must cover every step exactly once:
        no duplicated pre-resume events, no gap at the resume boundary.
        """
        def traced_run(spec):
            tracer = Tracer(enabled=True)
            previous = set_tracer(tracer)
            try:
                return run_job(spec, checkpoint_dir=tmp_path, attach_trace=True)
            finally:
                set_tracer(previous)

        first = traced_run(JobSpec(job_id="job", seed=7, grid_size=16, steps=3,
                                   checkpoint_every=1))
        second = traced_run(JobSpec(job_id="job", seed=7, grid_size=16, steps=6,
                                    checkpoint_every=1))
        assert first.ok and second.ok
        assert second.resumed_from == 3

        merged = Tracer().merge(first.trace).merge(second.trace)
        for type_ in ("divnorm", "step"):
            steps = sorted(e.step for e in merged.events(type_))
            assert steps == list(range(6)), type_

        # and the resumed trajectory is bit-for-bit the uninterrupted one
        reference = run_job(JobSpec(job_id="ref", seed=7, grid_size=16, steps=6))
        divnorms = [e.attrs["value"] for e in merged.events("divnorm")]
        ref_divnorms = np.cumsum(divnorms)[-1]
        assert second.final_divnorm == reference.final_divnorm
        assert second.cum_divnorm == pytest.approx(reference.cum_divnorm)
        assert ref_divnorms == pytest.approx(reference.cum_divnorm)


class TestFleetViewCrashProofing:
    """Rendering and folding must survive empty, sparse and disordered streams."""

    def test_render_empty_fleet_does_not_raise(self):
        out = render_fleet(FleetView())
        assert "0 jobs" in out

    def test_render_heartbeat_only_fleet_does_not_raise(self):
        fleet = FleetView()
        # a bare heartbeat: no job_start, no steps_total, no divnorm
        fleet.observe({"type": "heartbeat", "job_id": "h"})
        out = render_fleet(fleet)
        assert "h" in out
        (view,) = fleet.jobs()
        assert view.state == "running"

    def test_malformed_field_values_are_ignored_not_fatal(self):
        fleet = FleetView()
        fleet.observe({"type": "heartbeat", "job_id": "a", "step": "not-an-int",
                       "steps_total": None, "divnorm": "nan?", "pid": "pid",
                       "t": "yesterday", "attempt": object()})
        fleet.observe({"type": "job_start", "job_id": 42})  # non-str id: dropped
        fleet.observe("not even a dict")
        out = render_fleet(fleet)
        assert "a" in out

    def test_out_of_order_heartbeat_does_not_regress_progress(self):
        fleet = FleetView()
        fleet.observe({"type": "heartbeat", "job_id": "a", "step": 5, "attempt": 0})
        fleet.observe({"type": "heartbeat", "job_id": "a", "step": 3, "attempt": 0})
        (view,) = fleet.jobs()
        assert view.step == 5

    def test_late_events_cannot_resurrect_a_finished_job(self):
        fleet = FleetView()
        fleet.observe({"type": "job_start", "job_id": "a", "attempt": 0})
        fleet.observe({"type": "job_end", "job_id": "a", "status": "completed",
                       "attempt": 0})
        # stragglers of the same attempt arrive after the terminal event
        fleet.observe({"type": "heartbeat", "job_id": "a", "step": 9, "attempt": 0})
        fleet.observe({"type": "job_start", "job_id": "a", "attempt": 0})
        (view,) = fleet.jobs()
        assert view.state == "completed"

    def test_retry_attempt_legitimately_reopens_the_job(self):
        fleet = FleetView()
        fleet.observe({"type": "job_end", "job_id": "a", "status": "failed",
                       "attempt": 0, "step": 7})
        fleet.observe({"type": "job_start", "job_id": "a", "attempt": 1, "step": 0})
        (view,) = fleet.jobs()
        assert view.state == "running"
        assert view.attempt == 1
        assert view.step == 0  # progress restarts with the retry

    def test_cancelled_is_a_terminal_state(self):
        fleet = FleetView()
        fleet.observe({"type": "job_end", "job_id": "a", "status": "cancelled"})
        (view,) = fleet.jobs()
        assert view.state == "cancelled"
        assert "cancelled" in render_fleet(fleet)
