"""Tests for input-problem datasets and training-frame collection."""

import numpy as np
import pytest

from repro.data import (
    InputProblem,
    RecordingSolver,
    collect_training_frames,
    generate_problems,
)
from repro.fluid import FluidSimulator, PCGSolver, make_smoke_plume


class TestInputProblem:
    def test_materialize_reproducible(self):
        p = InputProblem(16, 42)
        g1, _ = p.materialize()
        g2, _ = p.materialize()
        np.testing.assert_array_equal(g1.u, g2.u)
        np.testing.assert_array_equal(g1.flags, g2.flags)

    def test_hashable_and_frozen(self):
        p = InputProblem(16, 1)
        assert p in {p}
        with pytest.raises(AttributeError):
            p.seed = 2


class TestGenerateProblems:
    def test_counts_and_sizes(self):
        probs = generate_problems(5, 16)
        assert len(probs) == 5
        assert all(p.grid_size == 16 for p in probs)

    def test_train_eval_disjoint(self):
        train = {p.seed for p in generate_problems(50, 16, split="train")}
        evals = {p.seed for p in generate_problems(50, 16, split="eval")}
        assert not train & evals

    def test_grid_sizes_disjoint_streams(self):
        a = {p.seed for p in generate_problems(20, 16)}
        b = {p.seed for p in generate_problems(20, 32)}
        assert not a & b

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError):
            generate_problems(1, 16, split="test")

    def test_unique_seeds_within_split(self):
        probs = generate_problems(100, 16)
        assert len({p.seed for p in probs}) == 100


class TestRecordingSolver:
    def test_records_every_solve_with_stride_one(self):
        g, src = make_smoke_plume(16, 16, rng=0)
        rec = RecordingSolver(PCGSolver())
        FluidSimulator(g, rec, src).run(4)
        assert len(rec.samples) == 4

    def test_stride_skips(self):
        g, src = make_smoke_plume(16, 16, rng=0)
        rec = RecordingSolver(PCGSolver(), stride=2)
        FluidSimulator(g, rec, src).run(4)
        assert len(rec.samples) == 2

    def test_passthrough_solution(self):
        g, src = make_smoke_plume(16, 16, rng=1)
        rec = RecordingSolver(PCGSolver())
        sim = FluidSimulator(g, rec, src)
        sim.run(2)
        for rec_step in sim.records:
            assert rec_step.projection.post_divergence < 1e-3


class TestCollectTrainingFrames:
    def test_shapes_consistent(self):
        probs = generate_problems(2, 16, split="train")
        data = collect_training_frames(probs, n_steps=4, stride=2)
        n = len(data["x"])
        assert data["x"].shape == (n, 2, 16, 16)
        assert data["b"].shape == (n, 1, 16, 16)
        assert data["y"].shape == (n, 1, 16, 16)
        assert data["solid"].shape == (n, 16, 16)
        assert data["weights"].shape == (n, 16, 16)

    def test_rhs_normalised(self):
        probs = generate_problems(2, 16, split="train")
        data = collect_training_frames(probs, n_steps=4)
        for i in range(len(data["x"])):
            fluid = ~data["solid"][i]
            assert data["b"][i, 0][fluid].std() == pytest.approx(1.0, rel=1e-6)
            assert data["b"][i, 0][fluid].mean() == pytest.approx(0.0, abs=1e-9)

    def test_geometry_channel_matches_solid(self):
        probs = generate_problems(2, 16, split="train")
        data = collect_training_frames(probs, n_steps=2)
        for i in range(len(data["x"])):
            np.testing.assert_array_equal(data["x"][i, 1] > 0.5, data["solid"][i])

    def test_targets_solve_the_system(self):
        from repro.fluid import apply_laplacian

        probs = generate_problems(1, 16, split="train")
        data = collect_training_frames(probs, n_steps=2)
        i = 0
        solid = data["solid"][i]
        r = data["b"][i, 0] - apply_laplacian(data["y"][i, 0], solid)
        assert np.abs(r[~solid]).max() < 1e-3

    def test_empty_problem_list_rejected(self):
        with pytest.raises(ValueError):
            collect_training_frames([])

    def test_mixed_grid_sizes_rejected(self):
        with pytest.raises(ValueError):
            collect_training_frames([InputProblem(16, 0), InputProblem(32, 1)])


class TestTrainModel:
    def test_training_reduces_loss_and_measures_time(self):
        from repro.models import train_model, tompson_arch

        probs = generate_problems(2, 16, split="train")
        data = collect_training_frames(probs, n_steps=4)
        model = train_model(tompson_arch(4), data, epochs=8, rng=0)
        assert model.history.train_loss[-1] < model.history.train_loss[0]
        assert model.inference_seconds > 0

    def test_rollout_rounds_extend_history(self):
        from repro.models import train_model, tompson_arch

        probs = generate_problems(2, 16, split="train")
        data = collect_training_frames(probs, n_steps=4)
        model = train_model(
            tompson_arch(4),
            data,
            epochs=4,
            rng=0,
            rollout_problems=probs,
            rollout_rounds=1,
            rollout_epochs=2,
            rollout_steps=3,
        )
        assert len(model.history.train_loss) == 6

    def test_fine_tune_existing_network(self):
        from repro.models import train_model, tompson_arch

        probs = generate_problems(1, 16, split="train")
        data = collect_training_frames(probs, n_steps=4)
        arch = tompson_arch(4)
        net = arch.build(rng=0)
        model = train_model(arch, data, epochs=2, network=net, rng=0)
        assert model.network is net

    def test_merge_datasets(self):
        from repro.models import merge_datasets

        a = {"x": np.zeros((2, 1)), "b": np.zeros((2, 1)), "extra": np.zeros((2, 1))}
        b = {"x": np.ones((3, 1)), "b": np.ones((3, 1))}
        merged = merge_datasets(a, b)
        assert set(merged) == {"x", "b"}
        assert merged["x"].shape == (5, 1)
