"""Cross-module integration tests: substrate + models + runtime together."""

import numpy as np
import pytest

from repro.core import ReferenceCache, quality_loss
from repro.data import InputProblem, collect_training_frames, generate_problems
from repro.fluid import (
    FluidSimulator,
    MultigridSolver,
    PCGSolver,
    SimulationConfig,
)
from repro.models import NNProjectionSolver, YangModel, tompson_arch, train_model
from repro.nn import Adam, DivNormLoss, Trainer


@pytest.fixture(scope="module")
def trained_cnn():
    probs = generate_problems(4, 16, split="train")
    data = collect_training_frames(probs, n_steps=8)
    model = train_model(
        tompson_arch(8),
        data,
        epochs=40,
        rng=0,
        rollout_problems=probs,
        rollout_rounds=1,
    )
    return model, data


class TestSolverInterchangeability:
    """Any pressure solver slots into the simulator unchanged."""

    @pytest.mark.parametrize("make_solver", [
        lambda: PCGSolver(),
        lambda: PCGSolver(preconditioner="jacobi"),
        lambda: MultigridSolver(max_cycles=30),
    ])
    def test_exact_solvers_agree_on_density(self, make_solver):
        prob = InputProblem(16, 77)
        grid, src = prob.materialize()
        res = FluidSimulator(grid, make_solver(), src).run(6)
        grid2, src2 = prob.materialize()
        ref = FluidSimulator(grid2, PCGSolver(tol=1e-8), src2).run(6)
        assert quality_loss(ref.density, res.density) < 0.05

    def test_nn_solver_in_simulator(self, trained_cnn):
        model, _ = trained_cnn
        grid, src = InputProblem(16, 88).materialize()
        res = FluidSimulator(grid, model.solver(passes=2), src).run(6)
        assert np.isfinite(res.density).all()

    def test_yang_solver_in_simulator(self):
        probs = generate_problems(2, 16, split="train")
        data = collect_training_frames(probs, n_steps=4)
        yang = YangModel(hidden=(8,), rng=0)
        trainer = Trainer(yang, DivNormLoss(), Adam(yang.parameters(), lr=3e-3), rng=0)
        trainer.fit({k: data[k] for k in ("x", "b", "solid", "weights")}, epochs=4)
        grid, src = InputProblem(16, 99).materialize()
        res = FluidSimulator(grid, NNProjectionSolver(yang, "yang"), src).run(4)
        assert np.isfinite(res.density).all()


class TestTrainingImprovesSimulation:
    def test_trained_beats_untrained(self, trained_cnn):
        model, _ = trained_cnn
        prob = InputProblem(16, 123)
        ref = ReferenceCache(8)
        reference = ref.reference(prob)

        untrained = tompson_arch(6).build(rng=99)
        g1, s1 = prob.materialize()
        bad = FluidSimulator(g1, NNProjectionSolver(untrained, passes=2), s1).run(8)
        g2, s2 = prob.materialize()
        good = FluidSimulator(g2, model.solver(passes=2), s2).run(8)
        assert quality_loss(reference.density, good.density) < quality_loss(
            reference.density, bad.density
        )

    def test_more_passes_reduce_single_solve_residual(self, trained_cnn):
        """Defect correction contracts the residual of one fixed solve.

        (Across a rollout neither Qloss nor CumDivNorm is monotone per
        problem — the trajectory itself changes — so the invariant is tested
        on a fixed right-hand side.)"""
        model, data = trained_cnn
        b = data["b"][0, 0]
        solid = data["solid"][0]
        residuals = [
            model.solver(passes=p).solve(b, solid).residual_norm for p in (1, 2, 4)
        ]
        assert residuals[1] <= residuals[0]
        assert residuals[2] <= residuals[1]


class TestMetricsPipeline:
    def test_divnorm_tracks_solver_quality(self, trained_cnn):
        """A crude solver leaves more weighted divergence than an exact one."""
        model, _ = trained_cnn
        prob = InputProblem(16, 555)
        g1, s1 = prob.materialize()
        exact = FluidSimulator(g1, PCGSolver(), s1).run(6)
        g2, s2 = prob.materialize()
        approx = FluidSimulator(g2, model.solver(passes=1), s2).run(6)
        assert approx.cumdivnorm_history[-1] > exact.cumdivnorm_history[-1]

    def test_execution_records_reflect_speed_order(self, trained_cnn):
        from repro.core import collect_execution_records

        model, _ = trained_cnn
        probs = generate_problems(2, 16, split="eval")
        ref = ReferenceCache(6)
        recs = collect_execution_records([model], probs, ref, passes=2)
        # the paper's speed claim is against its standard MICCG(0); the
        # geometry-compiled kernel backend can out-run the NN at 16x16
        def baseline_seconds(p):
            g, s = p.materialize()
            return FluidSimulator(g, PCGSolver(backend="reference"), s).run(6).solve_seconds

        pcg_time = np.mean([baseline_seconds(p) for p in probs])
        nn_time = np.mean([r.execution_seconds for r in recs])
        assert nn_time < pcg_time
