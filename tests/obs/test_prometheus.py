"""Prometheus text exposition and the localhost scrape server."""

import urllib.request

from repro.metrics import MetricsRegistry
from repro.obs import (
    MetricFamilies,
    ScrapeServer,
    render_prometheus,
    sanitize_metric_name,
)
from repro.obs.prometheus import CONTENT_TYPE, OPENMETRICS_CONTENT_TYPE


class TestSanitizeNames:
    def test_slash_paths_flatten_with_prefix(self):
        assert sanitize_metric_name("sim/projection/pcg/solves") == (
            "repro_sim_projection_pcg_solves"
        )

    def test_existing_prefix_not_doubled(self):
        assert sanitize_metric_name("repro_x") == "repro_x"

    def test_bad_characters_squeeze(self):
        assert sanitize_metric_name("a b//c-d") == "repro_a_b_c_d"


class TestRenderFamilies:
    def test_counter_and_gauge_lines(self):
        fams = MetricFamilies()
        fams.counter("serve_submit_total", help="Submits.", labels=("tenant",)).inc(
            3, tenant="a"
        )
        fams.gauge("serve_workers", help="Workers.").set(2)
        text = render_prometheus(fams)
        assert "# TYPE repro_serve_submit_total counter" in text
        assert 'repro_serve_submit_total{tenant="a"} 3' in text
        assert "# TYPE repro_serve_workers gauge" in text
        assert "repro_serve_workers 2" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        fams = MetricFamilies()
        h = fams.histogram("lat", labels=("op",), unit="seconds")
        for v in (0.001, 0.002, 0.004, 0.5):
            h.observe(v, op="solve")
        text = render_prometheus(fams)
        lines = [l for l in text.splitlines() if l.startswith("repro_lat_bucket")]
        counts = [int(l.rsplit(" ", 1)[1].split(" #")[0]) for l in lines]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 4
        assert 'le="+Inf"' in lines[-1]
        assert 'repro_lat_count{op="solve"} 4' in text
        assert "repro_lat_sum" in text

    def test_exemplars_render_only_on_the_openmetrics_page(self):
        """Exemplars are OpenMetrics-only: a classic 0.0.4 parser reads the
        trailing `#` as a malformed timestamp and fails the whole scrape,
        so the default page must never carry them."""
        fams = MetricFamilies()
        h = fams.histogram("lat", labels=("op",))
        h.observe(0.001, op="x")
        h.observe(1.7, exemplar="span-slow", op="x")
        classic = render_prometheus(fams)
        assert "span_id" not in classic
        assert "# EOF" not in classic
        om = render_prometheus(fams, openmetrics=True)
        exemplar_lines = [l for l in om.splitlines() if "span_id" in l]
        assert len(exemplar_lines) == 1
        assert 'span_id="span-slow"' in exemplar_lines[0]
        assert exemplar_lines[0].startswith("repro_lat_bucket")
        assert om.splitlines()[-1] == "# EOF"

    def test_openmetrics_counter_type_header_uses_base_name(self):
        fams = MetricFamilies()
        fams.counter("hits_total").inc(2)
        om = render_prometheus(fams, openmetrics=True)
        assert "# TYPE repro_hits counter" in om
        assert "repro_hits_total 2" in om
        classic = render_prometheus(fams)
        assert "# TYPE repro_hits_total counter" in classic

    def test_label_values_are_escaped(self):
        fams = MetricFamilies()
        fams.counter("n", labels=("k",)).inc(k='we"ird\\path\nx')
        text = render_prometheus(fams)
        assert 'k="we\\"ird\\\\path\\nx"' in text


class TestRenderFlatRegistry:
    def test_flat_counters_and_timers(self):
        reg = MetricsRegistry()
        reg.inc("sim/steps", 5)
        with reg.timer("pcg/solve"):
            pass
        text = render_prometheus(None, reg)
        assert "# TYPE repro_sim_steps_total counter" in text
        assert "repro_sim_steps_total 5" in text
        assert "# TYPE repro_pcg_solve_seconds summary" in text
        assert "repro_pcg_solve_seconds_count 1" in text

    def test_empty_render_is_empty_string(self):
        assert render_prometheus(None, None) == ""
        assert render_prometheus(MetricFamilies(), MetricsRegistry()) == ""


class TestScrapeServer:
    def test_serves_metrics_on_localhost(self):
        fams = MetricFamilies()
        fams.counter("hits").inc(7)
        server = ScrapeServer(lambda: render_prometheus(fams), port=0)
        try:
            port = server.start()
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10
            ) as resp:
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                body = resp.read().decode()
            assert "repro_hits_total 7" in body
        finally:
            server.stop()

    def test_accept_header_negotiates_openmetrics(self):
        fams = MetricFamilies()
        fams.histogram("lat").observe(1.0, exemplar="sp1")
        server = ScrapeServer(
            lambda openmetrics=False: render_prometheus(fams, openmetrics=openmetrics),
            port=0,
        )
        try:
            port = server.start()
            url = f"http://127.0.0.1:{port}/metrics"
            request = urllib.request.Request(
                url, headers={"Accept": "application/openmetrics-text"}
            )
            with urllib.request.urlopen(request, timeout=10) as resp:
                assert resp.headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
                body = resp.read().decode()
            assert "span_id" in body
            assert body.splitlines()[-1] == "# EOF"
            # a plain scrape stays on the classic page: no exemplars
            with urllib.request.urlopen(url, timeout=10) as resp:
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                assert "span_id" not in resp.read().decode()
        finally:
            server.stop()

    def test_unknown_path_is_404_and_render_errors_are_500(self):
        def boom():
            raise RuntimeError("render bug")

        server = ScrapeServer(boom, port=0)
        try:
            port = server.start()
            for path, code in (("/nope", 404), ("/metrics", 500)):
                try:
                    urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=10)
                except urllib.error.HTTPError as exc:
                    assert exc.code == code
                else:
                    raise AssertionError(f"{path} should have failed")
        finally:
            server.stop()
