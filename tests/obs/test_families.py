"""Labeled metric families: frozen labels, cardinality guard, merge."""

import pytest

from repro.metrics import NULL_METRICS, MetricsRegistry
from repro.obs import (
    LabelCardinalityError,
    LabelMismatchError,
    MetricFamilies,
    NULL_FAMILIES,
)


class TestCounters:
    def test_inc_and_read_per_series(self):
        fams = MetricFamilies()
        c = fams.counter("requests", labels=("tenant", "outcome"))
        c.inc(tenant="a", outcome="ok")
        c.inc(2, tenant="a", outcome="ok")
        c.inc(tenant="b", outcome="err")
        assert c.value(tenant="a", outcome="ok") == 3
        assert c.value(tenant="b", outcome="err") == 1
        assert c.value(tenant="b", outcome="ok") == 0
        assert c.total() == 4

    def test_bound_handle_skips_validation(self):
        fams = MetricFamilies()
        c = fams.counter("hits", labels=("kind",))
        bound = c.labels(kind="disk")
        bound.inc()
        bound.inc(4)
        assert bound.value == 5
        assert c.value(kind="disk") == 5

    def test_unlabeled_family_is_one_series(self):
        fams = MetricFamilies()
        c = fams.counter("events")
        c.inc()
        c.inc()
        assert c.value() == 2


class TestFrozenLabels:
    def test_wrong_label_names_raise(self):
        fams = MetricFamilies()
        c = fams.counter("requests", labels=("tenant",))
        with pytest.raises(LabelMismatchError):
            c.inc(tennant="a")  # typo
        with pytest.raises(LabelMismatchError):
            c.inc(tenant="a", extra="b")
        with pytest.raises(LabelMismatchError):
            c.inc()  # missing

    def test_redeclare_with_different_labels_raises(self):
        fams = MetricFamilies()
        fams.counter("requests", labels=("tenant",))
        with pytest.raises(LabelMismatchError):
            fams.counter("requests", labels=("tenant", "outcome"))
        with pytest.raises(LabelMismatchError):
            fams.gauge("requests", labels=("tenant",))  # kind is frozen too

    def test_redeclare_identical_returns_same_family(self):
        fams = MetricFamilies()
        a = fams.counter("requests", labels=("tenant",))
        b = fams.counter("requests", labels=("tenant",))
        assert a is b


class TestCardinalityGuard:
    def test_unbounded_label_values_raise_not_oom(self):
        """Regression: feeding ids into a label must raise at the cap, not
        grow the series dict without bound."""
        fams = MetricFamilies()
        c = fams.counter("per_job", labels=("job_id",), max_series=8)
        for i in range(8):
            c.inc(job_id=f"job-{i}")
        with pytest.raises(LabelCardinalityError):
            c.inc(job_id="job-overflow")
        # existing series keep working at the cap
        c.inc(job_id="job-0")
        assert c.value(job_id="job-0") == 2
        assert len(c) == 8

    def test_labels_or_overflow_folds_at_the_cap(self):
        fams = MetricFamilies()
        c = fams.counter("per_tenant", labels=("tenant", "outcome"), max_series=2)
        c.labels_or_overflow("tenant", tenant="a", outcome="ok").inc()
        c.labels_or_overflow("tenant", tenant="b", outcome="ok").inc()
        for i in range(5):  # past the cap: all fold into one exempt series
            c.labels_or_overflow("tenant", tenant=f"hostile-{i}", outcome="ok").inc()
        assert c.value(tenant="_overflow", outcome="ok") == 5
        assert len(c) == 3  # cap + the one overflow series

    def test_labels_or_overflow_still_rejects_bad_schema(self):
        fams = MetricFamilies()
        c = fams.counter("per_tenant", labels=("tenant",), max_series=1)
        c.labels_or_overflow("tenant", tenant="a").inc()
        with pytest.raises(LabelMismatchError):
            c.labels_or_overflow("tenant", wrong="b")

    def test_histogram_merge_respects_cap(self):
        src = MetricFamilies()
        h = src.histogram("lat", labels=("t",), max_series=2)
        for t in ("a", "b", "c"):
            try:
                h.observe(0.1, t=t)
            except LabelCardinalityError:
                pass
        dst = MetricFamilies()
        dst.histogram("lat", labels=("t",), max_series=2)
        dst.merge(src)  # both series fit; no raise
        assert len(dst.get("lat")) == 2

    def test_merge_past_cap_folds_instead_of_raising(self):
        """Merge runs on the pool's result-delivery path: a worker snapshot
        whose series union crosses the cap must fold into ``_overflow``,
        never raise (histograms) or grow without bound (counters/gauges)."""
        src = MetricFamilies()
        src.counter("n", labels=("k",), max_series=4).inc(1, k="a")
        src.get("n").inc(2, k="b")
        src.get("n").inc(4, k="c")
        src.gauge("depth", labels=("k",), max_series=4).set(7, k="c")
        h = src.histogram("lat", labels=("k",), max_series=4)
        for k in ("a", "b", "c"):
            h.observe(0.1, k=k)

        dst = MetricFamilies()
        dst.counter("n", labels=("k",), max_series=2)
        dst.gauge("depth", labels=("k",), max_series=1)
        dst.gauge("depth", labels=("k",)).set(1, k="x")
        dst.histogram("lat", labels=("k",), max_series=2)
        dst.merge(src)  # must not raise
        # counters: a+b fit, c folds; nothing is lost from the books
        assert dst.get("n").value(k="_overflow") == 4
        assert dst.get("n").total() == 7
        assert len(dst.get("n")) == 3  # cap + the one exempt overflow series
        # gauges: the full family folds the incoming series
        assert dst.get("depth").value(k="_overflow") == 7
        # histograms: the overflowing series' observations land in overflow
        over = dst.get("lat").stat(k="_overflow")
        assert over is not None and over.count == 1
        assert len(dst.get("lat")) == 3

    def test_reads_at_the_cap_never_raise_or_create(self):
        fams = MetricFamilies()
        c = fams.counter("n", labels=("k",), max_series=1)
        c.inc(k="a")
        assert c.value(k="never-recorded") == 0.0
        g = fams.gauge("g", labels=("k",), max_series=1)
        g.set(1, k="a")
        assert g.value(k="never-recorded") == 0.0
        h = fams.histogram("h", labels=("k",), max_series=1)
        h.observe(0.1, k="a")
        assert h.stat(k="never-recorded") is None
        assert h.quantile(0.5, k="never-recorded") == 0.0
        assert len(c) == len(g) == len(h) == 1  # pure reads created nothing


class TestGaugesAndHistograms:
    def test_gauge_set_and_inc(self):
        fams = MetricFamilies()
        g = fams.gauge("workers", labels=("state",))
        g.set(4, state="busy")
        g.inc(state="busy")
        assert g.value(state="busy") == 5

    def test_histogram_stat_and_quantile(self):
        fams = MetricFamilies()
        h = fams.histogram("lat", labels=("op",), unit="seconds")
        for v in (0.01, 0.02, 0.04, 1.5):
            h.observe(v, op="solve")
        stat = h.stat(op="solve")
        assert stat.count == 4
        assert h.quantile(0.5, op="solve") > 0
        assert h.quantile(0.99, op="missing") == 0.0

    def test_histogram_exemplar_tracks_slowest(self):
        fams = MetricFamilies()
        h = fams.histogram("lat", labels=("op",))
        h.observe(0.1, exemplar="span-fast", op="x")
        h.observe(2.0, exemplar="span-slow", op="x")
        h.observe(0.5, exemplar="span-mid", op="x")
        ((labels, cell),) = h.samples()
        assert labels == {"op": "x"}
        assert cell[1] == {"span_id": "span-slow", "value": 2.0}


class TestMergeAndRoundTrip:
    def test_merge_adds_counters_and_folds_histograms(self):
        a, b = MetricFamilies(), MetricFamilies()
        for fams in (a, b):
            fams.counter("n", labels=("k",)).inc(3, k="x")
            fams.histogram("h", labels=("k",)).observe(0.5, k="x")
        a.merge(b)
        assert a.get("n").value(k="x") == 6
        assert a.get("h").stat(k="x").count == 2

    def test_merge_declares_unknown_families_from_snapshot(self):
        src = MetricFamilies()
        src.gauge("depth", labels=("q",)).set(7, q="main")
        dst = MetricFamilies().merge(src.to_dict())
        assert dst.get("depth").value(q="main") == 7
        assert dst.get("depth").kind == "gauge"

    def test_round_trip_is_lossless(self):
        src = MetricFamilies()
        src.counter("n", help="a count", labels=("k",)).inc(2, k="x")
        src.histogram("h", labels=("k",)).observe(0.25, exemplar="sp1", k="y")
        clone = MetricFamilies.from_dict(src.to_dict())
        assert clone.to_dict() == src.to_dict()


class TestRegistryIntegration:
    def test_families_ride_metrics_registry_snapshots(self):
        """Worker-process path: families ship home inside to_dict/merge."""
        worker = MetricsRegistry()
        worker.families.counter("fallbacks", labels=("solver",)).inc(solver="pcg")
        parent = MetricsRegistry()
        parent.merge(MetricsRegistry.from_dict(worker.to_dict()))
        assert parent.families.get("fallbacks").value(solver="pcg") == 1

    def test_empty_families_keep_snapshot_schema_unchanged(self):
        assert "families" not in MetricsRegistry().to_dict()

    def test_null_registry_families_are_noop(self):
        fams = NULL_METRICS.families
        assert fams is NULL_FAMILIES
        c = fams.counter("n", labels=("k",))
        c.inc(k="x")  # no validation, no storage
        c.labels(k="x").inc()
        assert len(fams) == 0

    def test_reset_drops_families(self):
        reg = MetricsRegistry()
        reg.families.counter("n").inc()
        reg.reset()
        assert len(reg.families) == 0
