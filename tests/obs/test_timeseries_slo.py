"""SeriesRecorder sampling/windows and SLO burn-rate evaluation."""

import pytest

from repro.obs import SLO, SeriesRecorder, SLOEngine, default_farm_slos, default_serve_slos
from repro.obs.slo import BurnWindow


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt
        return self.t


def make_recorder(interval=1.0, capacity=600):
    clock = FakeClock()
    return SeriesRecorder(interval=interval, capacity=capacity, clock=clock), clock


class TestSeriesRecorder:
    def test_tick_is_interval_gated(self):
        rec, clock = make_recorder(interval=1.0)
        counts = iter(range(100))
        rec.add_source("n", lambda: next(counts))
        assert rec.tick()
        assert not rec.tick()  # same instant: gated
        clock.advance(0.5)
        assert not rec.tick()
        clock.advance(0.6)
        assert rec.tick()
        assert len(rec.window("n", 60)) == 2

    def test_raising_and_nan_sources_are_skipped(self):
        rec, clock = make_recorder()

        def boom():
            raise ValueError("not ready")

        rec.add_source("bad", boom)
        rec.add_source("nan", lambda: float("nan"))
        rec.add_source("good", lambda: 1.0)
        rec.tick()
        assert rec.latest("bad") is None
        assert rec.latest("nan") is None
        assert rec.latest("good") == 1.0

    def test_delta_tolerates_counter_reset(self):
        rec, clock = make_recorder()
        for value in (10, 15, 2, 6):  # drops 15 -> 2: a restart
            rec.record("n", value, now=clock.advance(1.0))
        # 10->15 adds 5, reset segment counts 2 from zero, 2->6 adds 4
        assert rec.delta("n", 60) == 5 + 2 + 4

    def test_rate_and_average_and_capacity(self):
        rec, clock = make_recorder(capacity=4)
        for i in range(10):
            rec.record("n", float(i * 2), now=clock.advance(1.0))
        assert len(rec.window("n", 1e9)) == 4  # ring buffer bounded
        assert rec.rate("n", 1e9) == pytest.approx(2.0)
        assert rec.average("n", 1e9) == pytest.approx((12 + 14 + 16 + 18) / 4)

    def test_window_excludes_old_samples(self):
        rec, clock = make_recorder()
        rec.record("n", 1.0, now=0.0)
        rec.record("n", 2.0, now=100.0)
        assert [v for _, v in rec.window("n", 10, now=105.0)] == [2.0]


class TestSLOValidation:
    def test_ratio_slo_requires_series(self):
        with pytest.raises(ValueError):
            SLO(name="x", objective="", kind="ratio", budget=0.1)

    def test_threshold_slo_requires_value_series(self):
        with pytest.raises(ValueError):
            SLO(name="x", objective="", kind="threshold", budget=0.1, threshold=1.0)

    def test_budget_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLO(
                name="x", objective="", kind="ratio", budget=2.0,
                bad_series="b", total_series="t",
            )


def ratio_slo(budget=0.1, windows=None):
    return SLO(
        name="failure_ratio",
        objective="job_failure_ratio < 10%",
        kind="ratio",
        budget=budget,
        bad_series="bad",
        total_series="total",
        windows=windows
        or (BurnWindow(severity="critical", short_seconds=10, long_seconds=40, factor=2.0),),
    )


class TestBurnRates:
    def feed(self, rec, clock, bad_per_tick, total_per_tick, ticks=50):
        bad = total = 0.0
        for _ in range(ticks):
            bad += bad_per_tick
            total += total_per_tick
            now = clock.advance(1.0)
            rec.record("bad", bad, now=now)
            rec.record("total", total, now=now)

    def test_healthy_traffic_is_ok(self):
        rec, clock = make_recorder()
        engine = SLOEngine(rec, [ratio_slo()])
        self.feed(rec, clock, bad_per_tick=0, total_per_tick=10)
        (status,) = engine.evaluate()
        assert status.state == "ok"
        assert status.value == 1.0  # all good

    def test_sustained_burn_fires_both_windows(self):
        rec, clock = make_recorder()
        engine = SLOEngine(rec, [ratio_slo(budget=0.1)])
        # 50% failing: burn = 0.5/0.1 = 5x >= the 2x factor in both windows
        self.feed(rec, clock, bad_per_tick=5, total_per_tick=10)
        (status,) = engine.evaluate()
        assert status.state == "critical"
        tier = status.tiers[0]
        assert tier["firing"]
        assert tier["short_burn"] == pytest.approx(5.0)
        assert tier["long_burn"] == pytest.approx(5.0)

    def test_short_spike_alone_does_not_fire(self):
        rec, clock = make_recorder()
        engine = SLOEngine(rec, [ratio_slo(budget=0.1)])
        self.feed(rec, clock, bad_per_tick=0, total_per_tick=10, ticks=35)
        self.feed(rec, clock, bad_per_tick=5, total_per_tick=10, ticks=6)
        (status,) = engine.evaluate()
        # short window burns hot but the 40s window is still diluted
        assert status.tiers[0]["short_burn"] >= 2.0
        assert status.tiers[0]["long_burn"] < 2.0
        assert status.state == "ok"

    def test_factor_beyond_burn_ceiling_clamps_and_still_fires(self):
        """bad_fraction caps at 1.0, so burn caps at 1/budget: a 10x tier
        on a 0.5 budget (the stock cache_hit_ratio shape) must fire at the
        ceiling instead of being unreachable and silently inert."""
        rec, clock = make_recorder()
        slo = ratio_slo(
            budget=0.5,
            windows=(
                BurnWindow(severity="critical", short_seconds=10, long_seconds=40, factor=10.0),
            ),
        )
        engine = SLOEngine(rec, [slo])
        self.feed(rec, clock, bad_per_tick=10, total_per_tick=10)  # 100% bad
        (status,) = engine.evaluate()
        tier = status.tiers[0]
        assert tier["factor"] == 10.0
        assert tier["effective_factor"] == pytest.approx(2.0)  # 1 / budget
        assert tier["short_burn"] == pytest.approx(2.0)
        assert tier["firing"]
        assert status.state == "critical"

    def test_no_traffic_is_no_data(self):
        rec, clock = make_recorder()
        engine = SLOEngine(rec, [ratio_slo()])
        (status,) = engine.evaluate()
        assert status.state == "no_data"
        assert engine.state() == "no_data"

    def test_threshold_slo_on_sampled_quantile(self):
        rec, clock = make_recorder()
        slo = SLO(
            name="p99",
            objective="submit_to_result_p99 < 2s",
            kind="threshold",
            budget=0.1,
            value_series="p99",
            threshold=2.0,
            op="<",
            windows=(
                BurnWindow(severity="critical", short_seconds=10, long_seconds=40, factor=2.0),
            ),
        )
        engine = SLOEngine(rec, [slo])
        for _ in range(50):
            rec.record("p99", 5.0, now=clock.advance(1.0))  # every sample violates
        (status,) = engine.evaluate()
        assert status.state == "critical"
        assert status.value == 5.0

    def test_report_shape(self):
        rec, clock = make_recorder()
        engine = SLOEngine(rec, [ratio_slo()])
        report = engine.to_dict()
        assert set(report) == {"state", "slos"}
        (entry,) = report["slos"]
        assert {"name", "objective", "state", "value", "budget", "tiers"} <= set(entry)


class TestStockSLOs:
    def test_default_serve_slos_cover_the_acceptance_set(self):
        names = {slo.name for slo in default_serve_slos()}
        assert {"submit_to_result_p99", "cache_hit_ratio", "pcg_fallback_rate"} <= names
        assert len(names) >= 3

    def test_default_farm_slos_evaluate(self):
        rec, clock = make_recorder()
        engine = SLOEngine(rec, default_farm_slos())
        assert len(engine.evaluate()) >= 3
