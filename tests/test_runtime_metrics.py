"""Tests for the repro.metrics runtime-observability module."""

import json
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    TimerStat,
    get_metrics,
    reset_metrics,
    set_metrics,
)


class TestCountersAndTimers:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 2.5)
        m.inc("b", 0.5)
        assert m.counter("a") == 3.5
        assert m.counter("b") == 0.5
        assert m.counter("missing") == 0.0

    def test_timer_records_statistics(self):
        m = MetricsRegistry()
        for _ in range(3):
            with m.timer("work"):
                pass
        stat = m.timers["work"]
        assert stat.count == 3
        assert stat.total >= stat.max >= stat.min >= 0.0
        assert stat.mean == pytest.approx(stat.total / 3)

    def test_observe_records_explicit_durations(self):
        m = MetricsRegistry()
        m.observe("solve", 0.25)
        m.observe("solve", 0.75)
        stat = m.timers["solve"]
        assert stat.count == 2
        assert stat.total == 1.0
        assert stat.min == 0.25
        assert stat.max == 0.75

    def test_reset_clears_everything(self):
        m = MetricsRegistry()
        m.inc("a")
        m.observe("t", 1.0)
        m.reset()
        assert m.counters == {}
        assert m.timers == {}


class TestScopes:
    def test_scope_prefixes_names(self):
        m = MetricsRegistry()
        with m.scope("sim"):
            m.inc("steps")
            with m.scope("projection"):
                m.observe("solve", 0.1)
        m.inc("steps")
        assert m.counter("sim/steps") == 1.0
        assert m.counter("steps") == 1.0
        assert "sim/projection/solve" in m.timers

    def test_scope_restored_after_exception(self):
        m = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with m.scope("outer"):
                raise RuntimeError
        m.inc("after")
        assert m.counter("after") == 1.0

    def test_scopes_are_thread_local(self):
        """Two threads' scopes must not interleave on a shared registry.

        Regression (PR5): the prefix stack was a plain instance list, so a
        batched-backend worker thread entering ``scope`` mid-block could
        prepend its prefix to another thread's metric names.
        """
        m = MetricsRegistry()
        barrier = threading.Barrier(2, timeout=10)
        errors = []

        def worker(name):
            try:
                for _ in range(200):
                    with m.scope(name):
                        barrier.wait()  # both threads are inside their scope
                        m.inc("ticks")
                        with m.scope("inner"):
                            m.inc("ticks")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert not errors
        # every metric landed under its own thread's prefix, nothing crossed
        assert m.counter("a/ticks") == 200
        assert m.counter("b/ticks") == 200
        assert m.counter("a/inner/ticks") == 200
        assert m.counter("b/inner/ticks") == 200
        cross = [k for k in m.counters if "a/b" in k or "b/a" in k]
        assert cross == []


class TestJSONRoundTrip:
    def test_round_trip_preserves_snapshot(self):
        m = MetricsRegistry()
        m.inc("solver/pcg/solves", 4)
        m.observe("solver/pcg/solve", 0.125)
        m.observe("solver/pcg/solve", 0.5)
        with m.scope("sim"):
            m.inc("steps", 7)
        snapshot = m.to_dict()
        restored = MetricsRegistry.from_dict(json.loads(m.to_json()))
        assert restored.to_dict() == snapshot

    def test_empty_registry_round_trips(self):
        m = MetricsRegistry()
        assert MetricsRegistry.from_dict(json.loads(m.to_json())).to_dict() == m.to_dict()

    def test_timer_stat_round_trip_empty_min(self):
        stat = TimerStat()
        assert TimerStat.from_dict(stat.to_dict()).to_dict() == stat.to_dict()


class TestMerge:
    def test_counters_add_and_timers_combine(self):
        a = MetricsRegistry()
        a.inc("jobs", 2)
        a.observe("solve", 0.5)
        a.observe("solve", 1.5)
        b = MetricsRegistry()
        b.inc("jobs", 3)
        b.inc("retries")
        b.observe("solve", 0.25)
        b.observe("other", 1.0)
        a.merge(b)
        assert a.counter("jobs") == 5
        assert a.counter("retries") == 1
        stat = a.timers["solve"]
        assert stat.count == 3
        assert stat.total == 2.25
        assert stat.min == 0.25
        assert stat.max == 1.5
        assert a.timers["other"].count == 1

    def test_merge_accepts_snapshot_dict(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.inc("steps", 4)
        b.observe("t", 0.125)
        a.merge(b.to_dict())
        assert a.counter("steps") == 4
        assert a.timers["t"].count == 1

    def test_merge_is_commutative(self):
        def build(vals):
            m = MetricsRegistry()
            for v in vals:
                m.inc("n")
                m.observe("t", v)
            return m

        ab = build([0.1, 0.2]).merge(build([0.3]))
        ba = build([0.3]).merge(build([0.1, 0.2]))
        assert ab.to_dict() == ba.to_dict()

    def test_merge_with_empty_timer_keeps_min_empty_semantics(self):
        a = MetricsRegistry()
        a.timers["t"] = TimerStat()
        b = MetricsRegistry()
        b.observe("t", 0.5)
        a.merge(b)
        assert a.timers["t"].min == 0.5
        assert a.timers["t"].max == 0.5
        assert a.timers["t"].count == 1


_durations = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=8
)


def _stat(values) -> TimerStat:
    stat = TimerStat()
    for v in values:
        stat.add(v)
    return stat


class TestTimerStatProperties:
    """Empty stats are normal forms: round-trip and merge stay exact.

    Regression (PR5): an empty ``TimerStat`` used to serialise ``max=0.0``,
    so a restored empty stat was *not* a merge identity — merging it into
    real data could pull ``max`` down to 0.  Both bounds now serialise as
    null and ``from_dict`` normalises any ``count=0`` snapshot.
    """

    @given(_durations)
    @settings(max_examples=50, deadline=None)
    def test_round_trip_is_exact_including_empty(self, values):
        stat = _stat(values)
        restored = TimerStat.from_dict(json.loads(json.dumps(stat.to_dict())))
        assert restored == stat
        assert restored.to_dict() == stat.to_dict()

    @given(_durations, _durations)
    @settings(max_examples=50, deadline=None)
    def test_merge_commutes_even_through_snapshots(self, xs, ys):
        direct, swapped = _stat(xs), _stat(ys)
        direct.merge(_stat(ys))
        swapped.merge(_stat(xs))
        assert direct.to_dict() == swapped.to_dict()
        # merging a *restored* stat behaves exactly like merging the original
        via_snapshot = _stat(xs)
        via_snapshot.merge(TimerStat.from_dict(_stat(ys).to_dict()))
        assert via_snapshot.to_dict() == direct.to_dict()

    @given(_durations)
    @settings(max_examples=50, deadline=None)
    def test_restored_empty_stat_is_a_merge_identity(self, values):
        stat = _stat(values)
        before = stat.to_dict()
        stat.merge(TimerStat.from_dict(TimerStat().to_dict()))
        assert stat.to_dict() == before


class TestForkedDefaultRegistry:
    def test_forked_child_gets_fresh_registry(self):
        import multiprocessing as mp

        get_metrics().inc("parent_only")

        def child(q):
            from repro.metrics import get_metrics as gm

            m = gm()
            q.put((m.counter("parent_only"), "child" in m.counters))
            m.inc("child")
            q.put(gm().counter("child"))

        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
        q = ctx.Queue()
        p = ctx.Process(target=child, args=(q,))
        p.start()
        p.join(30)
        assert p.exitcode == 0
        inherited, had_child = q.get(timeout=5)
        # the child saw a fresh registry, not the parent's accumulated one
        assert inherited == 0.0
        assert not had_child
        assert q.get(timeout=5) == 1.0
        # and the parent's registry is untouched by the child's writes
        assert get_metrics().counter("child") == 0.0


class TestDisabledAndGlobal:
    def test_null_metrics_is_noop(self):
        before = (dict(NULL_METRICS.counters), dict(NULL_METRICS.timers))
        NULL_METRICS.inc("x")
        with NULL_METRICS.timer("t"):
            pass
        with NULL_METRICS.scope("s"):
            NULL_METRICS.inc("y")
        assert (NULL_METRICS.counters, NULL_METRICS.timers) == before == ({}, {})

    def test_set_metrics_swaps_default(self):
        mine = MetricsRegistry()
        previous = set_metrics(mine)
        try:
            assert get_metrics() is mine
        finally:
            set_metrics(previous)
        assert get_metrics() is previous

    def test_reset_metrics_clears_default(self):
        mine = MetricsRegistry()
        previous = set_metrics(mine)
        try:
            get_metrics().inc("z")
            reset_metrics()
            assert get_metrics().counter("z") == 0.0
        finally:
            set_metrics(previous)


class TestInstrumentedComponents:
    def test_simulator_emits_profile(self):
        from repro.data import InputProblem
        from repro.fluid import FluidSimulator, PCGSolver

        metrics = MetricsRegistry()
        grid, source = InputProblem(16, 0).materialize()
        sim = FluidSimulator(
            grid, PCGSolver(metrics=metrics), source, metrics=metrics
        )
        sim.run(2)
        assert metrics.counter("sim/steps") == 2
        assert metrics.counter("sim/projection/solves") == 2
        assert metrics.timers["sim/step"].count == 2
        # solver reporting lands under the sim scope (shared registry)
        assert metrics.counter("sim/solver/pcg/solves") == 2
        assert metrics.counter("sim/cache/mic0/miss") == 1
        assert metrics.counter("sim/cache/mic0/hit") == 1

    def test_trainer_records_epoch_seconds(self):
        from repro.nn import Adam, MSELoss, Network, Dense, Trainer

        rng = np.random.default_rng(0)
        net = Network([Dense(4, 2, rng=0)])
        data = {"x": rng.standard_normal((8, 4)), "y": rng.standard_normal((8, 2))}
        metrics = MetricsRegistry()
        trainer = Trainer(net, MSELoss(), Adam(net.parameters()), rng=0, metrics=metrics)
        history = trainer.fit(data, epochs=3, batch_size=4)
        assert len(history.epoch_seconds) == 3
        assert all(s >= 0 for s in history.epoch_seconds)
        assert metrics.counter("train/epochs") == 3
        assert metrics.timers["train/epoch"].count == 3
