"""Shared numerical gradient-checking helpers for layer tests."""

import numpy as np

from repro.nn import Layer


def numerical_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar function ``f`` at ``x``."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = f(x)
        flat[i] = orig - eps
        lo = f(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


def check_layer_input_grad(layer: Layer, x: np.ndarray, atol: float = 1e-6) -> None:
    """Verify backward() against a numerical gradient of sum(forward(x))."""
    out = layer.forward(x.copy(), training=True)
    analytic = layer.backward(np.ones_like(out))

    def f(inp):
        return float(layer.forward(inp, training=False).sum())

    numeric = numerical_grad(f, x.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol)


def check_layer_param_grads(layer: Layer, x: np.ndarray, atol: float = 1e-5) -> None:
    """Verify parameter gradients against numerical differentiation."""
    out = layer.forward(x.copy(), training=True)
    for p in layer.parameters():
        p.zero_grad()
    layer.backward(np.ones_like(out))
    for p in layer.parameters():
        analytic = p.grad.copy()

        def f(_x, p=p):
            return float(layer.forward(x.copy(), training=False).sum())

        numeric = np.zeros_like(p.value)
        flat = p.value.ravel()
        nflat = numeric.ravel()
        eps = 1e-6
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            hi = f(None)
            flat[i] = orig - eps
            lo = f(None)
            flat[i] = orig
            nflat[i] = (hi - lo) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=atol, err_msg=p.name)
