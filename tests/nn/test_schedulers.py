"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import (
    Adam,
    CosineLR,
    Dense,
    MSELoss,
    Network,
    Parameter,
    SGD,
    StepLR,
    Trainer,
    WarmupLR,
)


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(2))], lr=lr)


class TestStepLR:
    def test_decay_schedule(self):
        sched = StepLR(make_opt(1.0), step_size=2, gamma=0.5)
        rates = [sched.step() for _ in range(6)]
        assert rates == [1.0, 0.5, 0.5, 0.25, 0.25, 0.125]

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)
        with pytest.raises(ValueError):
            StepLR(make_opt(), gamma=1.5)

    def test_mutates_optimizer(self):
        opt = make_opt(1.0)
        StepLR(opt, step_size=1, gamma=0.1).step()
        assert opt.lr == pytest.approx(0.1)


class TestCosineLR:
    def test_endpoints(self):
        sched = CosineLR(make_opt(2.0), total_epochs=10, min_lr=0.2)
        first = sched.compute(0)
        last = sched.compute(10)
        assert first == pytest.approx(2.0)
        assert last == pytest.approx(0.2)

    def test_monotone_decay(self):
        sched = CosineLR(make_opt(1.0), total_epochs=8)
        rates = [sched.step() for _ in range(8)]
        assert rates == sorted(rates, reverse=True)

    def test_clamped_past_horizon(self):
        sched = CosineLR(make_opt(1.0), total_epochs=4, min_lr=0.1)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CosineLR(make_opt(), total_epochs=0)


class TestWarmupLR:
    def test_linear_ramp(self):
        sched = WarmupLR(make_opt(1.0), warmup_epochs=4)
        rates = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(rates, [0.25, 0.5, 0.75, 1.0])

    def test_delegates_after_warmup(self):
        opt = make_opt(1.0)
        after = StepLR(make_opt(1.0), step_size=1, gamma=0.5)
        sched = WarmupLR(opt, warmup_epochs=2, after=after)
        rates = [sched.step() for _ in range(4)]
        assert rates[:2] == [0.5, 1.0]
        assert rates[2] == pytest.approx(0.5)

    def test_holds_base_without_after(self):
        sched = WarmupLR(make_opt(2.0), warmup_epochs=1)
        assert [sched.step() for _ in range(3)] == [2.0, 2.0, 2.0]


class TestTrainerIntegration:
    def test_scheduler_applied_per_epoch(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 3))
        y = x @ rng.standard_normal((3, 1))
        net = Network([Dense(3, 1, rng=1)])
        opt = Adam(net.parameters(), lr=0.05)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        Trainer(net, MSELoss(), opt, rng=0).fit(
            {"x": x, "y": y}, epochs=3, scheduler=sched
        )
        assert opt.lr == pytest.approx(0.05 * 0.5**3)

    def test_cosine_anneals_during_training(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((64, 4))
        y = np.sin(x.sum(axis=1, keepdims=True))
        net = Network([Dense(4, 1, rng=2)])
        opt = Adam(net.parameters(), lr=0.02)
        hist = Trainer(net, MSELoss(), opt, rng=4).fit(
            {"x": x, "y": y}, epochs=20, scheduler=CosineLR(opt, total_epochs=20)
        )
        assert opt.lr < 1e-6  # fully annealed
        assert np.isfinite(hist.train_loss).all()
        assert hist.train_loss[-1] < hist.train_loss[0]
