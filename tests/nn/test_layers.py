"""Tests for individual layers: shapes, semantics and exact gradients."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    LeakyReLU,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
    Upsample2d,
)

from .gradcheck import check_layer_input_grad, check_layer_param_grads

RNG = np.random.default_rng(0)


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(2, 5, kernel=3, rng=0)
        x = RNG.standard_normal((4, 2, 8, 8))
        assert conv.forward(x).shape == (4, 5, 8, 8)

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, kernel=4)

    def test_wrong_channels_rejected(self):
        conv = Conv2d(2, 5, rng=0)
        with pytest.raises(ValueError):
            conv.forward(RNG.standard_normal((1, 3, 8, 8)))

    def test_identity_kernel(self):
        conv = Conv2d(1, 1, kernel=3, rng=0)
        conv.weight.value[:] = 0.0
        conv.weight.value[0, 0, 1, 1] = 1.0
        conv.bias.value[:] = 0.0
        x = RNG.standard_normal((2, 1, 6, 6))
        np.testing.assert_allclose(conv.forward(x), x, atol=1e-12)

    def test_translation_equivariance_interior(self):
        conv = Conv2d(1, 3, kernel=3, rng=1)
        x = RNG.standard_normal((1, 1, 12, 12))
        shifted = np.roll(x, 2, axis=3)
        y = conv.forward(x)
        ys = conv.forward(shifted)
        np.testing.assert_allclose(ys[:, :, :, 4:10], np.roll(y, 2, axis=3)[:, :, :, 4:10], atol=1e-12)

    def test_inference_workspace_reused_and_correct(self):
        conv = Conv2d(2, 3, kernel=3, rng=0)
        x1 = RNG.standard_normal((1, 2, 8, 8))
        x2 = RNG.standard_normal((1, 2, 8, 8))
        y_train = conv.forward(x1, training=True)  # allocating reference path
        y1 = conv.forward(x1, training=False)
        np.testing.assert_allclose(y1, y_train, atol=1e-14)
        buf = conv._ws_cols
        assert conv.workspace_reuses == 0
        y2 = conv.forward(x2, training=False)
        assert conv._ws_cols is buf  # same shape -> same buffer
        assert conv.workspace_reuses == 1
        np.testing.assert_allclose(y2, conv.forward(x2, training=True), atol=1e-14)
        # outputs must not alias the workspace: y1 unchanged by the 2nd call
        np.testing.assert_allclose(y1, y_train, atol=1e-14)

    def test_inference_workspace_shape_change_and_reset(self):
        conv = Conv2d(1, 2, kernel=3, rng=0)
        conv.forward(RNG.standard_normal((1, 1, 8, 8)), training=False)
        buf = conv._ws_cols
        conv.forward(RNG.standard_normal((2, 1, 6, 6)), training=False)
        assert conv._ws_cols is not buf  # new shape -> reallocated
        conv.reset_workspace()
        assert conv._ws_cols is None and conv._ws_pad is None

    def test_bias_applied(self):
        conv = Conv2d(1, 2, rng=0)
        conv.weight.value[:] = 0.0
        conv.bias.value[:] = [1.5, -2.0]
        out = conv.forward(np.zeros((1, 1, 4, 4)))
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_input_gradient(self):
        conv = Conv2d(2, 3, kernel=3, rng=2)
        x = RNG.standard_normal((2, 2, 5, 5))
        check_layer_input_grad(conv, x)

    def test_param_gradients(self):
        conv = Conv2d(2, 2, kernel=3, rng=3)
        x = RNG.standard_normal((2, 2, 4, 4))
        check_layer_param_grads(conv, x)

    def test_flops_formula(self):
        conv = Conv2d(2, 4, kernel=3, rng=0)
        assert conv.flops((2, 8, 8)) == 2 * 2 * 9 * 4 * 64

    def test_param_count(self):
        conv = Conv2d(2, 4, kernel=3, rng=0)
        assert conv.param_count() == 4 * 2 * 9 + 4

    def test_float32_forward_backward_round_trip_stays_float32(self):
        """Regression: backward allocated its padded gradient as float64,
        silently upcasting float32 training."""
        conv = Conv2d(2, 3, rng=0)
        conv.weight.value = conv.weight.value.astype(np.float32)
        conv.bias.value = conv.bias.value.astype(np.float32)
        x = np.random.default_rng(0).standard_normal((2, 2, 8, 8)).astype(np.float32)
        out = conv.forward(x, training=True)
        assert out.dtype == np.float32
        dx = conv.backward(np.ones_like(out))
        assert dx.dtype == np.float32

    def test_backward_requires_training_forward(self):
        conv = Conv2d(1, 1, rng=0)
        conv.forward(np.zeros((1, 1, 4, 4)), training=False)
        with pytest.raises(RuntimeError):
            conv.backward(np.zeros((1, 1, 4, 4)))


class TestDense:
    def test_affine(self):
        d = Dense(3, 2, rng=0)
        d.weight.value[:] = np.arange(6).reshape(3, 2)
        d.bias.value[:] = [1.0, -1.0]
        out = d.forward(np.array([[1.0, 0.0, 0.0]]))
        np.testing.assert_allclose(out, [[1.0, 0.0]])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            Dense(3, 2, rng=0).forward(np.zeros((1, 4)))

    def test_input_gradient(self):
        d = Dense(4, 3, rng=1)
        check_layer_input_grad(d, RNG.standard_normal((3, 4)))

    def test_param_gradients(self):
        d = Dense(4, 3, rng=2)
        check_layer_param_grads(d, RNG.standard_normal((3, 4)))

    def test_flops(self):
        assert Dense(4, 3, rng=0).flops((4,)) == 24


class TestFlatten:
    def test_roundtrip(self):
        f = Flatten()
        x = RNG.standard_normal((2, 3, 4, 5))
        out = f.forward(x)
        assert out.shape == (2, 60)
        back = f.backward(out)
        np.testing.assert_array_equal(back, x)

    def test_output_shape(self):
        assert Flatten().output_shape((3, 4, 5)) == (60,)


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh])
    def test_gradient(self, layer_cls):
        layer = layer_cls()
        x = RNG.standard_normal((3, 4)) + 0.1  # avoid the ReLU kink at 0
        check_layer_input_grad(layer, x)

    def test_relu_clamps(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_leaky_negative_slope(self):
        out = LeakyReLU(0.1).forward(np.array([[-10.0]]))
        np.testing.assert_allclose(out, [[-1.0]])

    def test_sigmoid_range(self):
        out = Sigmoid().forward(np.array([[-100.0, 0.0, 100.0]]))
        assert out[0, 0] < 1e-20 and out[0, 1] == 0.5 and out[0, 2] > 1 - 1e-12

    def test_sigmoid_overflow_safe(self):
        out = Sigmoid().forward(np.array([[-1e10, 1e10]]))
        assert np.isfinite(out).all()

    def test_tanh_odd(self):
        t = Tanh()
        np.testing.assert_allclose(t.forward(np.array([[1.0]])), -t.forward(np.array([[-1.0]])))


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_shape_check(self):
        with pytest.raises(ValueError):
            MaxPool2d(2).forward(np.zeros((1, 1, 5, 5)))

    def test_maxpool_factor_check(self):
        with pytest.raises(ValueError):
            MaxPool2d(1)

    def test_maxpool_gradient(self):
        # distinct values avoid ties, where the max-gradient is not defined
        x = RNG.permutation(np.arange(64.0)).reshape(1, 1, 8, 8) * 0.1
        check_layer_input_grad(MaxPool2d(2), x)

    def test_maxpool_tie_routes_to_single_position(self):
        x = np.ones((1, 1, 2, 2))
        layer = MaxPool2d(2)
        layer.forward(x, training=True)
        g = layer.backward(np.ones((1, 1, 1, 1)))
        assert g.sum() == 1.0  # not duplicated across tied positions

    def test_avgpool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = AvgPool2d(2).forward(x)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avgpool_gradient(self):
        check_layer_input_grad(AvgPool2d(2), RNG.standard_normal((2, 2, 4, 4)))

    def test_upsample_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = Upsample2d(2).forward(x)
        np.testing.assert_array_equal(out[0, 0, :2, :2], 1.0)
        np.testing.assert_array_equal(out[0, 0, 2:, 2:], 4.0)

    def test_upsample_gradient(self):
        check_layer_input_grad(Upsample2d(2), RNG.standard_normal((2, 1, 3, 3)))

    def test_pool_then_upsample_restores_shape(self):
        x = RNG.standard_normal((1, 3, 8, 8))
        y = Upsample2d(2).forward(MaxPool2d(2).forward(x))
        assert y.shape == x.shape

    def test_output_shapes(self):
        assert MaxPool2d(2).output_shape((3, 8, 8)) == (3, 4, 4)
        assert Upsample2d(2).output_shape((3, 4, 4)) == (3, 8, 8)


class TestDropout:
    def test_identity_at_inference(self):
        x = RNG.standard_normal((4, 8))
        np.testing.assert_array_equal(Dropout(0.5, rng=0).forward(x, training=False), x)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_probability_identity_in_training(self):
        x = RNG.standard_normal((4, 8))
        np.testing.assert_array_equal(Dropout(0.0, rng=0).forward(x, training=True), x)

    def test_expected_scale_preserved(self):
        x = np.ones((200, 200))
        out = Dropout(0.3, rng=1).forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_mask_reused_in_backward(self):
        d = Dropout(0.5, rng=2)
        x = np.ones((10, 10))
        out = d.forward(x, training=True)
        g = d.backward(np.ones_like(out))
        np.testing.assert_array_equal((out == 0), (g == 0))
