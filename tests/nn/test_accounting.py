"""Tests for FLOP/memory accounting."""

import pytest

from repro.nn import (
    Conv2d,
    Dense,
    Flatten,
    MaxPool2d,
    Network,
    ReLU,
    Upsample2d,
    analyze_network,
    pcg_flops,
    pcg_memory_bytes,
)


class TestAnalyzeNetwork:
    def test_pooling_reduces_downstream_flops(self):
        plain = Network([Conv2d(2, 4, rng=0), Conv2d(4, 4, rng=1)])
        pooled = Network([Conv2d(2, 4, rng=0), MaxPool2d(2), Conv2d(4, 4, rng=1), Upsample2d(2)])
        assert analyze_network(pooled, (2, 16, 16)).flops < analyze_network(plain, (2, 16, 16)).flops

    def test_memory_includes_params_and_activations(self):
        net = Network([Conv2d(2, 4, rng=0)])
        usage = analyze_network(net, (2, 8, 8))
        # params*4 plus (input + output activations)*4 bytes
        expected = (net.param_count() + (2 * 64 + 4 * 64)) * 4
        assert usage.memory_bytes == expected

    def test_mixed_conv_dense_network(self):
        net = Network([Conv2d(1, 2, rng=0), Flatten(), Dense(2 * 16, 4, rng=1), ReLU()])
        usage = analyze_network(net, (1, 4, 4))
        assert usage.flops > 0
        assert usage.params == net.param_count()

    def test_units(self):
        net = Network([Dense(10, 10, rng=0)])
        usage = analyze_network(net, (10,))
        assert usage.mflops == pytest.approx(usage.flops / 1e6)
        assert usage.memory_mb == pytest.approx(usage.memory_bytes / 2**20)


class TestPCGAccounting:
    def test_flops_linear_in_cells_and_iterations(self):
        assert pcg_flops(100, 10) == pytest.approx(2 * pcg_flops(50, 10))
        assert pcg_flops(100, 20) == pytest.approx(2 * pcg_flops(100, 10))

    def test_memory_covers_solver_fields(self):
        # nine float32 fields per cell
        assert pcg_memory_bytes(1000) == 9 * 1000 * 4

    def test_matches_solver_counter(self):
        """The analytic estimate must agree with PCGSolver's own counter."""
        import numpy as np

        from repro.fluid import MACGrid2D, PCGSolver

        g = MACGrid2D(16, 16)
        rng = np.random.default_rng(0)
        b = np.where(g.fluid, rng.standard_normal(g.shape), 0.0)
        res = PCGSolver(tol=1e-7).solve(b, g.solid)
        assert res.flops == pytest.approx(pcg_flops(int(g.fluid.sum()), res.iterations))
