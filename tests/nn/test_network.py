"""Tests for Network/Residual containers, losses, optimisers and training."""

import numpy as np
import pytest

from repro.fluid import MACGrid2D, PCGSolver, apply_laplacian, divnorm_weights
from repro.nn import (
    Adam,
    Conv2d,
    Dense,
    DivNormLoss,
    MSELoss,
    Network,
    ReLU,
    Residual,
    SGD,
    Sigmoid,
    Trainer,
    analyze_network,
    divnorm_of_residual,
)

from .gradcheck import numerical_grad

RNG = np.random.default_rng(0)


def tiny_cnn(seed=0):
    return Network(
        [
            Conv2d(2, 4, kernel=3, rng=seed),
            ReLU(),
            Conv2d(4, 1, kernel=3, rng=seed + 1),
        ]
    )


class TestNetwork:
    def test_forward_shape(self):
        net = tiny_cnn()
        out = net.forward(RNG.standard_normal((3, 2, 8, 8)))
        assert out.shape == (3, 1, 8, 8)

    def test_parameters_collected(self):
        net = tiny_cnn()
        assert len(net.parameters()) == 4  # two convs x (weight, bias)

    def test_zero_grad(self):
        net = tiny_cnn()
        x = RNG.standard_normal((2, 2, 6, 6))
        out = net.forward(x, training=True)
        net.backward(np.ones_like(out))
        assert any(np.abs(p.grad).sum() > 0 for p in net.parameters())
        net.zero_grad()
        assert all((p.grad == 0).all() for p in net.parameters())

    def test_end_to_end_input_gradient(self):
        net = tiny_cnn(seed=5)
        x = RNG.standard_normal((1, 2, 5, 5))
        out = net.forward(x.copy(), training=True)
        analytic = net.backward(np.ones_like(out))
        numeric = numerical_grad(lambda v: float(net.forward(v, training=False).sum()), x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_flops_additive(self):
        net = tiny_cnn()
        total = net.flops((2, 8, 8))
        parts = (
            net.layers[0].flops((2, 8, 8))
            + net.layers[1].flops((4, 8, 8))
            + net.layers[2].flops((4, 8, 8))
        )
        assert total == parts


class TestResidual:
    def test_identity_plus_function(self):
        block = Residual([Conv2d(3, 3, kernel=3, rng=0)])
        x = RNG.standard_normal((2, 3, 6, 6))
        inner = block.layers[0].forward(x)
        np.testing.assert_allclose(block.forward(x), inner + x)

    def test_shape_mismatch_rejected(self):
        block = Residual([Conv2d(3, 5, kernel=3, rng=0)])
        with pytest.raises(ValueError):
            block.forward(RNG.standard_normal((1, 3, 6, 6)))

    def test_gradient_includes_skip(self):
        block = Residual([Conv2d(2, 2, kernel=3, rng=1)])
        x = RNG.standard_normal((1, 2, 4, 4))
        out = block.forward(x.copy(), training=True)
        analytic = block.backward(np.ones_like(out))
        numeric = numerical_grad(lambda v: float(block.forward(v, training=False).sum()), x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_zero_inner_weights_give_identity_gradient(self):
        block = Residual([Conv2d(2, 2, kernel=3, rng=2)])
        for p in block.parameters():
            p.value[:] = 0.0
        x = RNG.standard_normal((1, 2, 4, 4))
        out = block.forward(x, training=True)
        np.testing.assert_allclose(out, x)
        g = block.backward(np.ones_like(out))
        np.testing.assert_allclose(g, 1.0)


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()
        v, _ = loss.value_and_grad(np.array([[1.0, 2.0]]), {"y": np.array([[0.0, 0.0]])})
        assert v == pytest.approx(2.5)

    def test_gradient_matches_numeric(self):
        loss = MSELoss()
        pred = RNG.standard_normal((3, 4))
        y = RNG.standard_normal((3, 4))
        _, grad = loss.value_and_grad(pred, {"y": y})
        numeric = numerical_grad(lambda p: loss.value_and_grad(p, {"y": y})[0], pred.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-7)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().value_and_grad(np.zeros((2, 2)), {"y": np.zeros((2, 3))})


class TestDivNormLoss:
    def make_batch(self, n=2, size=10, seed=0):
        rng = np.random.default_rng(seed)
        g = MACGrid2D(size, size)
        solid = np.broadcast_to(g.solid, (n, size, size)).copy()
        weights = np.broadcast_to(divnorm_weights(g.solid), (n, size, size)).copy()
        b = np.where(~solid, rng.standard_normal((n, size, size)), 0.0)
        nf = (~solid).sum(axis=(1, 2), keepdims=True)
        fluid_mean = b.sum(axis=(1, 2), keepdims=True) / nf
        b = np.where(~solid, b - fluid_mean, 0.0)
        return {"b": b[:, None], "solid": solid, "weights": weights}

    def test_zero_loss_at_exact_solution(self):
        batch = self.make_batch(n=1)
        solid = batch["solid"][0]
        res = PCGSolver(tol=1e-12).solve(batch["b"][0, 0], solid)
        pred = res.pressure[None, None]
        v, _ = DivNormLoss().value_and_grad(pred, batch)
        assert v < 1e-12

    def test_positive_for_zero_prediction(self):
        batch = self.make_batch()
        v, _ = DivNormLoss().value_and_grad(np.zeros_like(batch["b"]), batch)
        assert v > 0

    def test_gradient_matches_numeric(self):
        batch = self.make_batch(n=1, size=8, seed=3)
        loss = DivNormLoss()
        pred = np.random.default_rng(4).standard_normal(batch["b"].shape) * 0.1
        _, grad = loss.value_and_grad(pred, batch)
        numeric = numerical_grad(lambda p: loss.value_and_grad(p, batch)[0], pred.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_gradient_descends(self):
        batch = self.make_batch(n=1, size=8, seed=5)
        loss = DivNormLoss()
        pred = np.zeros_like(batch["b"])
        v0, grad = loss.value_and_grad(pred, batch)
        v1, _ = loss.value_and_grad(pred - 0.05 * grad, batch)
        assert v1 < v0

    def test_divnorm_of_residual_consistent(self):
        batch = self.make_batch(n=1, size=8, seed=6)
        pred = np.zeros((8, 8))
        direct = divnorm_of_residual(batch["b"][0, 0], pred, batch["solid"][0], batch["weights"][0])
        nf = int((~batch["solid"][0]).sum())
        v, _ = DivNormLoss().value_and_grad(pred[None, None], batch)
        assert v == pytest.approx(direct / nf)


class TestOptimisers:
    def quadratic_params(self):
        from repro.nn import Parameter

        return [Parameter(np.array([5.0, -3.0]))]

    def test_sgd_minimises_quadratic(self):
        params = self.quadratic_params()
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            params[0].grad += 2 * params[0].value
            opt.step()
        np.testing.assert_allclose(params[0].value, 0.0, atol=1e-6)

    def test_sgd_momentum_accelerates(self):
        def run(momentum):
            params = self.quadratic_params()
            opt = SGD(params, lr=0.01, momentum=momentum)
            for _ in range(50):
                opt.zero_grad()
                params[0].grad += 2 * params[0].value
                opt.step()
            return np.abs(params[0].value).max()

        assert run(0.9) < run(0.0)

    def test_adam_minimises_quadratic(self):
        params = self.quadratic_params()
        opt = Adam(params, lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            params[0].grad += 2 * params[0].value
            opt.step()
        np.testing.assert_allclose(params[0].value, 0.0, atol=1e-4)


class TestTrainer:
    def test_learns_linear_map(self):
        rng = np.random.default_rng(0)
        w_true = rng.standard_normal((3, 2))
        x = rng.standard_normal((200, 3))
        y = x @ w_true
        net = Network([Dense(3, 2, rng=1)])
        trainer = Trainer(net, MSELoss(), Adam(net.parameters(), lr=0.05), rng=2)
        hist = trainer.fit({"x": x, "y": y}, epochs=40, batch_size=32)
        assert hist.train_loss[-1] < 1e-3
        assert hist.train_loss[-1] < hist.train_loss[0]

    def test_validation_tracked(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((64, 2))
        y = x.sum(axis=1, keepdims=True)
        net = Network([Dense(2, 1, rng=0)])
        trainer = Trainer(net, MSELoss(), SGD(net.parameters(), lr=0.05), rng=0)
        hist = trainer.fit({"x": x, "y": y}, epochs=5, validation={"x": x, "y": y})
        assert len(hist.val_loss) == 5

    def test_missing_x_rejected(self):
        net = Network([Dense(2, 1, rng=0)])
        trainer = Trainer(net, MSELoss(), SGD(net.parameters()))
        with pytest.raises(ValueError):
            trainer.fit({"y": np.zeros((4, 1))})

    def test_evaluate_without_updates(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((16, 2))
        y = rng.standard_normal((16, 1))
        net = Network([Dense(2, 1, rng=0)])
        trainer = Trainer(net, MSELoss(), SGD(net.parameters()))
        before = [p.value.copy() for p in net.parameters()]
        trainer.evaluate({"x": x, "y": y})
        for p, b in zip(net.parameters(), before):
            np.testing.assert_array_equal(p.value, b)

    def test_cnn_trains_on_divnorm(self):
        """A small CNN trained with the DivNorm objective reduces the loss."""
        rng = np.random.default_rng(3)
        g = MACGrid2D(12, 12)
        n = 16
        solid = np.broadcast_to(g.solid, (n, 12, 12)).copy()
        weights = np.broadcast_to(divnorm_weights(g.solid), (n, 12, 12)).copy()
        b = np.where(~solid, rng.standard_normal((n, 12, 12)), 0.0)
        x = np.stack([b, solid.astype(float)], axis=1)
        data = {"x": x, "b": b[:, None], "solid": solid, "weights": weights}
        net = tiny_cnn(seed=7)
        trainer = Trainer(net, DivNormLoss(), Adam(net.parameters(), lr=5e-3), rng=4)
        hist = trainer.fit(data, epochs=12, batch_size=8)
        assert hist.train_loss[-1] < 0.7 * hist.train_loss[0]


class TestAccounting:
    def test_analyze_network(self):
        net = tiny_cnn()
        usage = analyze_network(net, (2, 16, 16))
        assert usage.flops > 0
        assert usage.params == net.param_count()
        assert usage.memory_bytes > usage.params * 4

    def test_flops_scale_with_resolution(self):
        net = tiny_cnn()
        small = analyze_network(net, (2, 8, 8)).flops
        large = analyze_network(net, (2, 16, 16)).flops
        assert large == pytest.approx(4 * small)
