"""InferencePlan: bitwise fp64 replay, fp32 fast path, arena reuse."""

import numpy as np
import pytest

from repro.models import tompson_arch
from repro.nn import (
    AvgPool2d,
    Conv2d,
    Dense,
    Dropout,
    Flatten,
    InferencePlan,
    LeakyReLU,
    MaxPool2d,
    Network,
    PlanError,
    Residual,
    Sigmoid,
    Tanh,
    Upsample2d,
)

H = 32


@pytest.fixture
def net():
    return tompson_arch(8).build(rng=0)


@pytest.fixture
def exotic():
    rng = np.random.default_rng(7)
    return Network([
        Conv2d(2, 6, 3, rng=rng), LeakyReLU(0.1), MaxPool2d(2),
        Residual([Conv2d(6, 6, 3, rng=rng), Tanh(), Dropout(0.3)]),
        Upsample2d(2), Conv2d(6, 4, 1, rng=rng), Sigmoid(),
        AvgPool2d(2), Conv2d(4, 1, 3, rng=rng),
    ])


def batch(n, c=2, h=H, seed=0):
    return np.random.default_rng(seed).standard_normal((n, c, h, h))


def test_fp64_plan_is_bitwise_identical_to_legacy_forward(net):
    x = batch(3)
    plan = InferencePlan(net, (2, H, H), batch_capacity=3, dtype=np.float64)
    np.testing.assert_array_equal(plan.run(x), net.forward(x, training=False))


def test_fp64_bitwise_holds_for_every_layer_kind(exotic):
    x = batch(2)
    plan = InferencePlan(exotic, (2, H, H), batch_capacity=2)
    np.testing.assert_array_equal(plan.run(x), exotic.forward(x, training=False))


def test_shrinking_batches_reuse_the_same_arena_bitwise(net):
    x = batch(4, seed=3)
    plan = InferencePlan(net, (2, H, H), batch_capacity=4)
    for n in (4, 2, 1, 3):
        got = plan.run(x[:n])
        np.testing.assert_array_equal(got, net.forward(x[:n], training=False))
    assert plan.workspace_reuses == 4


def test_fp32_plan_matches_within_float32_tolerance(net):
    x = batch(2, seed=5)
    plan = InferencePlan(net, (2, H, H), batch_capacity=2, dtype=np.float32)
    out = plan.run(x)
    assert out.dtype == np.float32
    ref = net.forward(x, training=False)
    np.testing.assert_allclose(out.astype(np.float64), ref, rtol=0, atol=1e-4)


def test_fp32_plan_handles_every_layer_kind(exotic):
    x = batch(2, seed=9)
    plan = InferencePlan(exotic, (2, H, H), batch_capacity=2, dtype=np.float32)
    ref = exotic.forward(x, training=False)
    np.testing.assert_allclose(plan.run(x).astype(np.float64), ref, rtol=0, atol=1e-4)


def test_weights_are_cast_once_at_build_not_per_run(net):
    plan = InferencePlan(net, (2, H, H), dtype=np.float32)
    conv_steps = [s for s in plan._steps if hasattr(s, "w_off")]
    assert conv_steps, "fp32 plan should compile shift-GEMM conv steps"
    assert all(s.w_off.dtype == np.float32 for s in conv_steps)
    assert all(s.bias.dtype == np.float32 for s in conv_steps)


def test_zero_steady_state_allocations(net):
    """Every run is served from the single pre-allocated arena."""
    x = batch(1)
    plan = InferencePlan(net, (2, H, H), dtype=np.float32)
    assert plan.arena_bytes > 0
    arena_before = plan._arena.__array_interface__["data"][0]
    buffers_before = [s.array.__array_interface__["data"][0]
                      for step in plan._steps for s in step.slots()]
    for _ in range(5):
        plan.run(x)
    assert plan.runs == 5
    assert plan.workspace_reuses == 5
    assert plan._arena.__array_interface__["data"][0] == arena_before
    buffers_after = [s.array.__array_interface__["data"][0]
                     for step in plan._steps for s in step.slots()]
    assert buffers_after == buffers_before


def test_conv_activation_fusion_collapses_steps(net):
    # tompson_arch(8) is conv+ReLU pairs ending in a bare conv: one step per conv
    convs = sum(isinstance(l, Conv2d) for l in net.layers)
    plan = InferencePlan(net, (2, H, H))
    assert plan.num_steps == convs


def test_run_rejects_wrong_shape_and_over_capacity(net):
    plan = InferencePlan(net, (2, H, H), batch_capacity=2)
    with pytest.raises(ValueError, match="expected"):
        plan.run(batch(1, h=H // 2))
    with pytest.raises(ValueError, match="capacity"):
        plan.run(batch(3))


def test_unsupported_layers_raise_plan_error():
    rng = np.random.default_rng(0)
    dense = Network([Flatten(), Dense(8, 2, rng=rng)])
    with pytest.raises(PlanError, match="vocabulary"):
        InferencePlan(dense, (2, 2, 2))
    with pytest.raises(PlanError):
        InferencePlan(tompson_arch(4).build(rng=0), (2, H, H), dtype=np.float16)
    with pytest.raises(PlanError, match="channels"):
        InferencePlan(tompson_arch(4).build(rng=0), (3, H, H))


def test_fp32_output_is_a_view_overwritten_by_next_run(net):
    plan = InferencePlan(net, (2, H, H))
    first = plan.run(batch(1, seed=1))
    kept = first.copy()
    plan.run(batch(1, seed=2))
    assert not np.array_equal(first, kept)
