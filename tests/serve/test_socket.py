"""The unix-socket front end: client/server round trips and typed errors."""

import asyncio

import pytest

from repro.farm import JobSpec
from repro.metrics import MetricsRegistry
from repro.serve import (
    InvalidSpecError,
    ProtocolError,
    QueueFullError,
    ServiceClient,
    ServiceServer,
    SimulationService,
    TenantQuota,
    UnknownJobError,
    encode_frame,
    read_frame,
)


def spec(job_id: str, seed=0, steps=3) -> JobSpec:
    return JobSpec(job_id=job_id, grid_size=16, seed=seed, steps=steps)


async def serve(tmp_path, **service_kwargs):
    defaults = dict(
        cache_dir=tmp_path / "cache",
        checkpoint_dir=tmp_path / "ckpt",
        min_workers=1,
        max_workers=2,
        default_quota=TenantQuota(rate=None, burst=64, max_pending=None),
        metrics=MetricsRegistry(),
    )
    defaults.update(service_kwargs)
    service = SimulationService(**defaults)
    await service.start()
    server = ServiceServer(service, tmp_path / "serve.sock")
    await server.start()
    return service, server


async def shutdown(service, server):
    await server.stop()
    await service.stop(drain=True, timeout=60.0)


class TestSocketRoundTrip:
    def test_submit_status_result_stats(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    job = await client.submit(spec("a"), tenant="t1")
                    assert job["job_id"] == "a"
                    result = await client.result("a", timeout=60.0)
                    assert result.ok and result.steps_done == 3
                    status = await client.status("a")
                    assert status["status"] == "completed"
                    # identical spec, new id: a hit over the wire
                    hit = await client.submit(spec("b"), tenant="t2")
                    assert hit["cached"] and hit["status"] == "completed"
                    stats = await client.stats()
                    assert stats["jobs"]["total"] == 2
                    assert stats["cache"]["hits"] == 1
            finally:
                await shutdown(service, server)

        asyncio.run(run())

    def test_watch_streams_until_done(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                sock = tmp_path / "serve.sock"
                async with await ServiceClient.open(sock) as client:
                    await client.submit(spec("w", steps=6))
                    events = []
                    async with await ServiceClient.open(sock) as watcher:
                        async for event in watcher.watch("w"):
                            events.append(event["type"])
                    assert events[-1] == "result"
                    result = await client.result("w", timeout=60.0)
                    assert result.ok
            finally:
                await shutdown(service, server)

        asyncio.run(run())

    def test_cancel_over_the_wire(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path, max_workers=1)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    await client.submit(spec("long", steps=10))
                    await client.submit(spec("victim", seed=1))
                    outcome = await client.cancel("victim")
                    assert outcome in ("queued", "running")
                    result = await client.result("victim", timeout=60.0)
                    assert result.status == "cancelled"
            finally:
                await shutdown(service, server)

        asyncio.run(run())


class TestTypedErrorsOverTheWire:
    def test_quota_rejection_reraises_typed(self, tmp_path):
        async def run():
            service, server = await serve(
                tmp_path,
                default_quota=TenantQuota(rate=None, burst=8, max_pending=1),
            )
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    await client.submit(spec("a", steps=8), tenant="t")
                    with pytest.raises(QueueFullError):
                        await client.submit(spec("b", seed=1), tenant="t")
            finally:
                await shutdown(service, server)

        asyncio.run(run())

    def test_unknown_job_reraises_typed(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    with pytest.raises(UnknownJobError):
                        await client.status("ghost")
            finally:
                await shutdown(service, server)

        asyncio.run(run())

    def test_invalid_spec_reraises_typed(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    bad = spec("ok").to_dict()
                    bad["solver"] = "bogus"
                    await client._request(
                        {"op": "submit", "spec": bad, "tenant": "t", "priority": 1}
                    )
            finally:
                await shutdown(service, server)

        with pytest.raises(InvalidSpecError):
            asyncio.run(run())

    def test_unknown_op_is_a_protocol_error(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    await client._request({"op": "frobnicate"})
            finally:
                await shutdown(service, server)

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_connection_survives_an_error_response(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    with pytest.raises(UnknownJobError):
                        await client.status("ghost")
                    # same connection still works after the typed error
                    job = await client.submit(spec("after"))
                    assert job["job_id"] == "after"
                    assert (await client.result("after", timeout=60.0)).ok
            finally:
                await shutdown(service, server)

        asyncio.run(run())

    def test_malformed_frame_gets_protocol_error_response(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                reader, writer = await asyncio.open_unix_connection(
                    str(tmp_path / "serve.sock")
                )
                frame = encode_frame({"op": "stats"})
                writer.write(frame[:4] + b"not json" + frame[4 + 8 :])
                await writer.drain()
                response = await read_frame(reader)
                assert response["ok"] is False
                assert response["error"]["code"] == "protocol_error"
                writer.close()
            finally:
                await shutdown(service, server)

        asyncio.run(run())
