"""``repro serve`` as a process: SIGTERM drains and persists the cache."""

import asyncio
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.farm import JobSpec
from repro.serve import ServiceClient

pytestmark = pytest.mark.skipif(
    sys.platform == "win32", reason="unix sockets + SIGTERM"
)


def start_server(tmp_path) -> subprocess.Popen:
    env = dict(os.environ)
    src = str((os.path.dirname(__file__) + "/../../src").replace("\\", "/"))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.abspath(src), env.get("PYTHONPATH")) if p
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--socket", str(tmp_path / "serve.sock"),
            "--cache-dir", str(tmp_path / "cache"),
            "--min-workers", "1", "--max-workers", "2",
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_for_socket(tmp_path, proc, timeout=30.0) -> None:
    deadline = time.monotonic() + timeout
    sock = tmp_path / "serve.sock"
    while time.monotonic() < deadline:
        if sock.exists():
            return
        if proc.poll() is not None:
            raise RuntimeError(f"server died early: {proc.stderr.read()}")
        time.sleep(0.05)
    raise TimeoutError("server socket never appeared")


class TestSigtermShutdown:
    def test_sigterm_drains_in_flight_jobs_and_persists_cache(self, tmp_path):
        proc = start_server(tmp_path)
        try:
            wait_for_socket(tmp_path, proc)

            async def submit() -> dict:
                async with await ServiceClient.open(tmp_path / "serve.sock") as c:
                    return await c.submit(
                        JobSpec(job_id="inflight", grid_size=24, seed=0, steps=10)
                    )

            job = asyncio.run(submit())
            assert job["status"] in ("queued", "running")

            # SIGTERM while the job is still in flight: the server must
            # finish it (drain, not kill) and exit 0
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=120)
            stderr = proc.stderr.read()
            assert code == 0, stderr
            assert "draining" in stderr
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait()

        # the drained job's result was cached and the LRU index persisted
        cache = tmp_path / "cache"
        assert (cache / "index.json").is_file()
        assert list(cache.glob("*/*.json")), "no cache entry persisted"
        assert not (tmp_path / "serve.sock").exists()
