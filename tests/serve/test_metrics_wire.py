"""The ``stats``/``metrics``/``health`` wire ops: real-socket round trips,
pinned response schemas, and label-cardinality behaviour under hostile
tenant names."""

import asyncio

from repro.farm import JobSpec
from repro.metrics import MetricsRegistry
from repro.obs.prometheus import CONTENT_TYPE, OPENMETRICS_CONTENT_TYPE
from repro.serve import ServiceClient, ServiceServer, SimulationService, TenantQuota


def spec(job_id: str, seed=0, steps=3) -> JobSpec:
    return JobSpec(job_id=job_id, grid_size=16, seed=seed, steps=steps)


async def serve(tmp_path, **service_kwargs):
    defaults = dict(
        cache_dir=tmp_path / "cache",
        checkpoint_dir=tmp_path / "ckpt",
        min_workers=1,
        max_workers=2,
        default_quota=TenantQuota(rate=None, burst=64, max_pending=None),
        metrics=MetricsRegistry(),
    )
    defaults.update(service_kwargs)
    service = SimulationService(**defaults)
    await service.start()
    server = ServiceServer(service, tmp_path / "serve.sock")
    await server.start()
    return service, server


async def shutdown(service, server):
    await server.stop()
    await service.stop(drain=True, timeout=60.0)


class TestStatsWireSchema:
    def test_stats_round_trip_schema_is_pinned(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    await client.submit(spec("a"))
                    await client.result("a", timeout=60.0)
                    stats = await client.stats()
            finally:
                await shutdown(service, server)
            # the schema clients (and the fleet header) depend on
            assert set(stats) == {"jobs", "admission", "cache", "pool"}
            assert set(stats["jobs"]) == {"total", "by_status", "cached"}
            assert stats["jobs"]["total"] == 1
            assert stats["jobs"]["by_status"]["completed"] == 1
            assert stats["cache"] is not None and "hits" in stats["cache"]
            assert stats["pool"] is not None

        asyncio.run(run())


class TestMetricsWireOp:
    def test_metrics_round_trip_over_the_socket(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                sock = tmp_path / "serve.sock"
                async with await ServiceClient.open(sock) as client:
                    await client.submit(spec("a"), tenant="alpha")
                    await client.result("a", timeout=60.0)
                    # identical spec, fresh id: a cache hit on the second pass
                    await client.submit(spec("b"), tenant="beta")
                    await client.result("b", timeout=60.0)
                    text = await client.metrics()
            finally:
                await shutdown(service, server)
            return text

        text = asyncio.run(run())
        # labeled serve families with tenant/outcome/scenario dimensions
        assert 'repro_serve_submit_total{tenant="alpha",outcome="accepted"} 1' in text
        assert 'repro_serve_submit_total{tenant="beta",outcome="cached"} 1' in text
        assert (
            'repro_serve_cache_requests_total{scenario="smoke_plume",outcome="hit"} 1'
            in text
        )
        assert "repro_serve_submit_to_result_seconds_bucket" in text
        assert 'tenant="alpha"' in text
        # autoscaler gauges and flat counters render on the same page
        assert "# TYPE repro_serve_workers gauge" in text
        assert "repro_serve_submitted_total 2" in text
        # worker-side solver families merged home through the pool
        assert "# TYPE repro_solver_iterations histogram" in text

    def test_metrics_response_frame_schema(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    response = await client._request({"op": "metrics"})
            finally:
                await shutdown(service, server)
            return response

        response = asyncio.run(run())
        assert set(response) == {"ok", "content_type", "text"}
        assert response["ok"] is True
        assert response["content_type"] == CONTENT_TYPE
        assert isinstance(response["text"], str)

    def test_metrics_op_negotiates_openmetrics(self, tmp_path):
        """The default page is classic 0.0.4 (exemplar-free — classic
        parsers fail the whole scrape on one); ``openmetrics: true``
        switches the exposition and the advertised content type."""

        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    await client.submit(spec("a"))
                    await client.result("a", timeout=60.0)
                    classic = await client.metrics()
                    om = await client._request({"op": "metrics", "openmetrics": True})
            finally:
                await shutdown(service, server)
            return classic, om

        classic, om = asyncio.run(run())
        assert "span_id" not in classic
        assert "# EOF" not in classic
        assert om["content_type"] == OPENMETRICS_CONTENT_TYPE
        assert om["text"].splitlines()[-1] == "# EOF"

    def test_health_round_trip_evaluates_slos(self, tmp_path):
        async def run():
            service, server = await serve(tmp_path)
            try:
                async with await ServiceClient.open(tmp_path / "serve.sock") as client:
                    await client.submit(spec("a"))
                    await client.result("a", timeout=60.0)
                    health = await client.health()
            finally:
                await shutdown(service, server)
            return health

        health = asyncio.run(run())
        assert set(health) == {"state", "slos", "recorder"}
        assert health["state"] in ("ok", "warning", "critical", "no_data")
        assert len(health["slos"]) >= 3
        for slo in health["slos"]:
            assert {"name", "objective", "state", "value", "budget", "tiers"} <= set(slo)
        assert "serve_submit_to_result_p99" in health["recorder"]["series"]


class TestTenantCardinality:
    def test_unbounded_tenant_names_fold_to_overflow_not_oom(self, tmp_path):
        """Regression: a client inventing a tenant per request must neither
        crash the submission path nor grow the label space unboundedly."""

        async def run():
            service, server = await serve(tmp_path)
            # tiny cap so the test stays fast; the production default is 256
            service._submit_total.max_series = 6
            service._submit_latency.max_series = 3
            try:
                sock = tmp_path / "serve.sock"
                async with await ServiceClient.open(sock) as client:
                    for i in range(12):
                        job = await client.submit(spec(f"j{i}", seed=i), tenant=f"t{i}")
                        assert job["job_id"] == f"j{i}"
                    for i in range(12):
                        await client.result(f"j{i}", timeout=60.0)
                    text = await client.metrics()
            finally:
                await shutdown(service, server)
            # bounded at the cap plus the single cap-exempt overflow series
            assert len(service._submit_total) <= 7
            assert len(service._submit_latency) <= 4
            return text

        text = asyncio.run(run())
        assert 'repro_serve_submit_total{tenant="_overflow",outcome="accepted"}' in text
        assert 'repro_serve_submit_to_result_seconds_count{tenant="_overflow"}' in text
