"""SimulationService end to end: tenants, cache hits, cancel, shutdown."""

import asyncio

import pytest

from repro.farm import JobSpec
from repro.metrics import MetricsRegistry
from repro.serve import (
    DuplicateJobError,
    QueueFullError,
    QuotaExceededError,
    ShuttingDownError,
    SimulationService,
    TenantQuota,
    UnknownJobError,
)


def make_service(tmp_path, **kwargs) -> SimulationService:
    defaults = dict(
        cache_dir=tmp_path / "cache",
        checkpoint_dir=tmp_path / "ckpt",
        min_workers=1,
        max_workers=2,
        default_quota=TenantQuota(rate=None, burst=64, max_pending=None),
        autoscale_seconds=0.05,
        metrics=MetricsRegistry(),
    )
    defaults.update(kwargs)
    return SimulationService(**defaults)


def spec(job_id: str, seed=0, steps=3, grid=16, scenario="smoke_plume") -> JobSpec:
    return JobSpec(
        job_id=job_id, grid_size=grid, seed=seed, steps=steps, scenario=scenario
    )


class TestServiceEndToEnd:
    def test_concurrent_tenants_mixed_scenarios(self, tmp_path):
        """The acceptance workload: N tenants, mixed scenarios, bounded quota.

        Every submission must either complete or be rejected with a *typed*
        quota error — nothing hangs, nothing fails untyped — and resubmitting
        an already-computed spec must be answered from the cache without
        re-simulating (asserted via the ``sim/steps`` solve counter).
        """
        service = make_service(
            tmp_path,
            default_quota=TenantQuota(rate=None, burst=64, max_pending=2),
        )
        scenarios = ["smoke_plume", "inflow_jet", "dam_break"]

        async def run():
            await service.start()
            completed_ids, rejections = [], []
            for tenant_idx in range(3):
                tenant = f"tenant-{tenant_idx}"
                for k in range(4):  # 4 submissions against max_pending=2
                    job_id = f"{tenant}-j{k}"
                    try:
                        service.submit(
                            spec(
                                job_id,
                                seed=tenant_idx,
                                scenario=scenarios[k % len(scenarios)],
                            ),
                            tenant=tenant,
                        )
                        completed_ids.append(job_id)
                    except (QuotaExceededError, QueueFullError) as exc:
                        rejections.append(exc)
                results = await asyncio.gather(
                    *(service.result(j, timeout=120.0) for j in completed_ids
                      if j.startswith(tenant))
                )
                assert all(r.ok for r in results)
            assert rejections, "the pending cap never triggered"
            assert all(isinstance(e, QueueFullError) for e in rejections)

            # resubmit one finished spec verbatim (fresh job id): cache hit,
            # and the solve counter proves nothing was re-simulated
            steps_before = service.metrics.counter("sim/steps")
            summary = service.submit(
                spec("resubmit", seed=0, scenario="smoke_plume"), tenant="tenant-9"
            )
            result = await service.result("resubmit", timeout=30.0)
            assert summary["cached"] and summary["status"] == "completed"
            assert result.cached and result.ok
            assert service.metrics.counter("sim/steps") == steps_before
            assert await service.stop(drain=True, timeout=120.0)

        asyncio.run(run())

    def test_cache_hit_matches_original_result(self, tmp_path):
        service = make_service(tmp_path)

        async def run():
            await service.start()
            service.submit(spec("a", seed=7))
            first = await service.result("a", timeout=60.0)
            service.submit(spec("b", seed=7))
            second = await service.result("b", timeout=60.0)
            await service.stop(drain=True, timeout=60.0)
            return first, second

        first, second = asyncio.run(run())
        assert not first.cached and second.cached
        assert second.job_id == "b"
        assert second.final_divnorm == first.final_divnorm
        assert second.steps_done == first.steps_done

    def test_without_cache_every_job_simulates(self, tmp_path):
        service = make_service(tmp_path, cache_dir=None)

        async def run():
            await service.start()
            service.submit(spec("a", seed=7))
            await service.result("a", timeout=60.0)
            service.submit(spec("b", seed=7))
            second = await service.result("b", timeout=60.0)
            await service.stop(drain=True, timeout=60.0)
            return second

        assert not asyncio.run(run()).cached

    def test_cache_survives_service_restart(self, tmp_path):
        async def first_life():
            service = make_service(tmp_path)
            await service.start()
            service.submit(spec("a", seed=3))
            await service.result("a", timeout=60.0)
            await service.stop(drain=True, timeout=60.0)

        async def second_life():
            service = make_service(tmp_path)
            await service.start()
            summary = service.submit(spec("b", seed=3))
            result = await service.result("b", timeout=60.0)
            await service.stop(drain=True, timeout=60.0)
            return summary, result

        asyncio.run(first_life())
        summary, result = asyncio.run(second_life())
        assert summary["cached"] and result.cached

    def test_duplicate_and_unknown_job_ids_are_typed(self, tmp_path):
        service = make_service(tmp_path)

        async def run():
            await service.start()
            service.submit(spec("a"))
            with pytest.raises(DuplicateJobError):
                service.submit(spec("a"))
            with pytest.raises(UnknownJobError):
                service.status("never-submitted")
            with pytest.raises(UnknownJobError):
                await service.result("never-submitted")
            await service.stop(drain=True, timeout=60.0)

        asyncio.run(run())

    def test_cancel_queued_job_never_runs(self, tmp_path):
        service = make_service(tmp_path, min_workers=1, max_workers=1)

        async def run():
            await service.start()
            service.submit(spec("long", grid=24, steps=10))
            service.submit(spec("victim", seed=1))
            outcome = service.cancel("victim")
            result = await service.result("victim", timeout=60.0)
            await service.stop(drain=True, timeout=60.0)
            return outcome, result

        outcome, result = asyncio.run(run())
        assert outcome["outcome"] in ("queued", "running")
        assert result.status == "cancelled"
        assert result.steps_done == 0 or outcome["outcome"] == "running"

    def test_stop_without_drain_resolves_pending_futures(self, tmp_path):
        service = make_service(tmp_path, min_workers=1, max_workers=1)

        async def run():
            await service.start()
            for i in range(4):
                service.submit(spec(f"q{i}", grid=24, steps=10, seed=i))
            waiters = [
                asyncio.create_task(service.result(f"q{i}", timeout=60.0))
                for i in range(4)
            ]
            await asyncio.sleep(0.05)
            await service.stop(drain=False, timeout=60.0)
            return await asyncio.gather(*waiters)

        results = asyncio.run(run())
        assert len(results) == 4
        assert all(r.status in ("completed", "cancelled") for r in results)
        assert any(r.status == "cancelled" for r in results)

    def test_submissions_rejected_while_stopping(self, tmp_path):
        service = make_service(tmp_path)

        async def run():
            await service.start()
            await service.stop(drain=True, timeout=60.0)
            with pytest.raises(ShuttingDownError):
                service.submit(spec("late"))

        asyncio.run(run())

    def test_stop_flushes_cache_index(self, tmp_path):
        service = make_service(tmp_path)

        async def run():
            await service.start()
            service.submit(spec("a"))
            await service.result("a", timeout=60.0)
            await service.stop(drain=True, timeout=60.0)

        asyncio.run(run())
        assert (tmp_path / "cache" / "index.json").is_file()

    def test_watch_streams_events_until_terminal(self, tmp_path):
        service = make_service(tmp_path)

        async def run():
            await service.start()
            service.submit(spec("w", grid=24, steps=6))
            q = service.subscribe("w")
            events = []
            while True:
                event = await asyncio.wait_for(q.get(), timeout=60.0)
                if event is None:
                    break
                events.append(event)
            await service.stop(drain=True, timeout=60.0)
            return events

        events = asyncio.run(run())
        types = [e["type"] for e in events]
        assert types[-1] == "result"
        assert "job_end" in types

    def test_subscribe_to_finished_job_yields_terminal_event(self, tmp_path):
        service = make_service(tmp_path)

        async def run():
            await service.start()
            service.submit(spec("done"))
            await service.result("done", timeout=60.0)
            q = service.subscribe("done")
            first = q.get_nowait()
            sentinel = q.get_nowait()
            await service.stop(drain=True, timeout=60.0)
            return first, sentinel

        first, sentinel = asyncio.run(run())
        assert first["type"] == "result" and first["status"] == "completed"
        assert sentinel is None

    def test_stats_snapshot_shape(self, tmp_path):
        service = make_service(tmp_path)

        async def run():
            await service.start()
            service.submit(spec("a"), tenant="t")
            await service.result("a", timeout=60.0)
            stats = service.stats()
            await service.stop(drain=True, timeout=60.0)
            return stats

        stats = asyncio.run(run())
        assert stats["jobs"]["total"] == 1
        assert stats["jobs"]["by_status"] == {"completed": 1}
        assert stats["admission"]["t"]["admitted"] == 1
        assert stats["cache"]["puts"] == 1
        assert stats["pool"]["max_workers"] == 2
