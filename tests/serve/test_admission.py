"""Admission control: token buckets, pending caps, typed rejections."""

import pytest

from repro.serve import (
    AdmissionController,
    AdmissionError,
    QueueFullError,
    QuotaExceededError,
    ServeError,
    TenantQuota,
    TokenBucket,
)


class Clock:
    """Deterministic injectable clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = Clock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert all(bucket.try_take() for _ in range(3))
        assert not bucket.try_take()

    def test_refills_at_rate(self):
        clock = Clock()
        bucket = TokenBucket(rate=2.0, burst=4, clock=clock)
        for _ in range(4):
            bucket.try_take()
        clock.advance(1.0)  # 2 tokens back
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = Clock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(1000.0)
        assert bucket.available == 2

    def test_rate_none_never_empties(self):
        bucket = TokenBucket(rate=None, burst=1, clock=Clock())
        assert all(bucket.try_take() for _ in range(50))


class TestQuotaValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [{"rate": 0.0}, {"rate": -1.0}, {"burst": 0}, {"max_pending": 0}],
    )
    def test_invalid_quotas_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TenantQuota(**kwargs)


class TestAdmissionController:
    def controller(self, clock=None, **quota) -> AdmissionController:
        return AdmissionController(
            default_quota=TenantQuota(**quota), clock=clock or Clock()
        )

    def test_burst_then_quota_exceeded(self):
        ctrl = self.controller(rate=1.0, burst=2, max_pending=None)
        ctrl.admit("t")
        ctrl.admit("t")
        with pytest.raises(QuotaExceededError) as exc_info:
            ctrl.admit("t")
        assert exc_info.value.code == "quota_exceeded"
        assert exc_info.value.tenant == "t"

    def test_rate_refill_readmits(self):
        clock = Clock()
        ctrl = self.controller(clock=clock, rate=1.0, burst=1, max_pending=None)
        ctrl.admit("t")
        with pytest.raises(QuotaExceededError):
            ctrl.admit("t")
        clock.advance(1.0)
        ctrl.admit("t")  # no raise

    def test_max_pending_then_queue_full(self):
        ctrl = self.controller(rate=None, burst=8, max_pending=2)
        ctrl.admit("t")
        ctrl.admit("t")
        with pytest.raises(QueueFullError) as exc_info:
            ctrl.admit("t")
        assert exc_info.value.code == "queue_full"

    def test_release_frees_a_pending_slot(self):
        ctrl = self.controller(rate=None, burst=8, max_pending=1)
        ctrl.admit("t")
        with pytest.raises(QueueFullError):
            ctrl.admit("t")
        ctrl.release("t")
        ctrl.admit("t")  # no raise
        assert ctrl.pending("t") == 1

    def test_queue_full_rejection_burns_no_rate_token(self):
        ctrl = self.controller(rate=1.0, burst=5, max_pending=1)
        ctrl.admit("t")
        for _ in range(3):
            with pytest.raises(QueueFullError):
                ctrl.admit("t")
        ctrl.release("t")
        ctrl.admit("t")  # 4 tokens must remain: the cap check ran first

    def test_tenants_are_isolated(self):
        ctrl = self.controller(rate=None, burst=8, max_pending=1)
        ctrl.admit("a")
        ctrl.admit("b")  # b's cap is untouched by a's pending job
        with pytest.raises(QueueFullError):
            ctrl.admit("a")

    def test_per_tenant_quota_overrides_default(self):
        ctrl = AdmissionController(
            default_quota=TenantQuota(rate=None, burst=8, max_pending=1),
            quotas={"vip": TenantQuota(rate=None, burst=8, max_pending=3)},
            clock=Clock(),
        )
        for _ in range(3):
            ctrl.admit("vip")
        with pytest.raises(QueueFullError):
            ctrl.admit("vip")
        ctrl.admit("other")
        with pytest.raises(QueueFullError):
            ctrl.admit("other")

    def test_typed_errors_are_serve_errors(self):
        assert issubclass(QuotaExceededError, AdmissionError)
        assert issubclass(QueueFullError, AdmissionError)
        assert issubclass(AdmissionError, ServeError)

    def test_snapshot_counts_admissions_and_rejections(self):
        ctrl = self.controller(rate=None, burst=8, max_pending=1)
        ctrl.admit("t")
        with pytest.raises(QueueFullError):
            ctrl.admit("t")
        snap = ctrl.snapshot()
        assert snap["t"]["admitted"] == 1
        assert snap["t"]["rejected"] == 1
        assert snap["t"]["pending"] == 1


class TestCharge:
    """The cache-hit admission path: rate-billed, pending-cap exempt."""

    def controller(self, clock=None, **quota) -> AdmissionController:
        return AdmissionController(
            default_quota=TenantQuota(**quota), clock=clock or Clock()
        )

    def test_charge_drains_the_same_bucket_as_admit(self):
        ctrl = self.controller(rate=1.0, burst=2, max_pending=None)
        ctrl.charge("t")
        ctrl.admit("t")
        with pytest.raises(QuotaExceededError):
            ctrl.admit("t")

    def test_charge_raises_quota_exceeded_when_empty(self):
        ctrl = self.controller(rate=1.0, burst=1, max_pending=None)
        ctrl.charge("t")
        with pytest.raises(QuotaExceededError) as exc_info:
            ctrl.charge("t")
        assert exc_info.value.code == "quota_exceeded"
        assert exc_info.value.tenant == "t"

    def test_charge_never_occupies_a_pending_slot(self):
        ctrl = self.controller(rate=None, burst=8, max_pending=1)
        for _ in range(5):
            ctrl.charge("t")
        assert ctrl.pending("t") == 0
        ctrl.admit("t")  # the cap was untouched by the charges

    def test_charge_refills_at_rate(self):
        clock = Clock()
        ctrl = self.controller(clock=clock, rate=1.0, burst=1, max_pending=None)
        ctrl.charge("t")
        with pytest.raises(QuotaExceededError):
            ctrl.charge("t")
        clock.advance(1.0)
        ctrl.charge("t")  # no raise


class TestCacheHitsAreRateLimited:
    """Regression: serve's cache hits must drain the tenant's token bucket.

    Before the fix, a cache hit skipped admission entirely, so one tenant
    could hammer a popular cached spec at unbounded rate.
    """

    def test_cache_hits_charge_the_token_bucket(self, tmp_path):
        import asyncio

        from repro.farm import JobSpec
        from repro.serve import SimulationService

        service = SimulationService(
            cache_dir=tmp_path / "cache",
            checkpoint_dir=tmp_path / "ckpt",
            min_workers=1,
            max_workers=1,
            # rate so slow the bucket never meaningfully refills in-test
            default_quota=TenantQuota(rate=0.001, burst=3.0, max_pending=1),
        )

        def spec(job_id: str) -> JobSpec:
            return JobSpec(job_id=job_id, grid_size=16, seed=3, steps=2)

        async def run():
            await service.start()
            service.submit(spec("warm"), tenant="producer")
            assert (await service.result("warm", timeout=60.0)).ok

            # burst=3: two hits pass (pending cap of 1 does NOT apply to
            # them), the third exhausts the bucket and must be rejected
            assert service.submit(spec("hit-1"), tenant="hammer")["cached"]
            assert service.submit(spec("hit-2"), tenant="hammer")["cached"]
            with pytest.raises(QuotaExceededError):
                for k in range(50):  # pre-fix: all 50 sail through
                    service.submit(spec(f"hit-x{k}"), tenant="hammer")
            await service.stop(drain=True, timeout=60.0)

        asyncio.run(run())
