"""Wire framing: encode/decode, stream reads, malformed-input rejection."""

import asyncio
import struct

import pytest

from repro.serve import (
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_payload,
    encode_frame,
    read_frame,
)


def read_one(data: bytes, eof: bool = True) -> dict | None:
    """Feed bytes to a fresh StreamReader and read one frame from it."""

    async def go():
        r = asyncio.StreamReader()
        r.feed_data(data)
        if eof:
            r.feed_eof()
        return await read_frame(r)

    return asyncio.run(go())


class TestFraming:
    def test_encode_is_header_plus_compact_json(self):
        frame = encode_frame({"op": "stats"})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert frame[4:] == b'{"op":"stats"}'

    def test_round_trip(self):
        message = {"op": "submit", "spec": {"job_id": "j", "steps": 4}, "priority": 2}
        assert decode_payload(encode_frame(message)[4:]) == message

    def test_oversized_frame_rejected_at_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    @pytest.mark.parametrize("payload", [b"not json", b'"a string"', b"[1,2]", b"42"])
    def test_non_object_payloads_rejected(self, payload):
        with pytest.raises(ProtocolError):
            decode_payload(payload)


class TestReadFrame:
    def test_reads_one_frame(self):
        assert read_one(encode_frame({"ok": True})) == {"ok": True}

    def test_clean_eof_returns_none(self):
        assert read_one(b"") is None

    def test_eof_mid_header_raises(self):
        with pytest.raises(ProtocolError, match="mid-header"):
            read_one(b"\x00\x00")

    def test_eof_mid_frame_raises(self):
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_one(encode_frame({"op": "stats"})[:-3])

    def test_oversized_header_rejected_before_reading_payload(self):
        header = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ProtocolError, match="exceeds"):
            read_one(header, eof=False)

    def test_two_frames_back_to_back(self):
        async def both():
            r = asyncio.StreamReader()
            r.feed_data(encode_frame({"n": 1}) + encode_frame({"n": 2}))
            r.feed_eof()
            return await read_frame(r), await read_frame(r), await read_frame(r)

        first, second, third = asyncio.run(both())
        assert (first, second, third) == ({"n": 1}, {"n": 2}, None)
