"""Autoscaling: the pure policy and the drain-on-shrink pool path."""

import threading
import time

import pytest

from repro.farm import JobSpec, Pool
from repro.metrics import MetricsRegistry
from repro.serve import Autoscaler, plan_workers


class TestPlanWorkers:
    @pytest.mark.parametrize(
        "queue_depth,busy,current,expected",
        [
            (0, 0, 3, 1),   # idle: drain to the floor
            (0, 2, 1, 2),   # running jobs hold their workers
            (5, 1, 1, 4),   # deep queue: grow to the ceiling
            (1, 1, 1, 2),   # one-to-one with demand inside the band
            (100, 4, 4, 4), # never above the ceiling
        ],
    )
    def test_policy(self, queue_depth, busy, current, expected):
        assert (
            plan_workers(queue_depth, busy, current, min_workers=1, max_workers=4)
            == expected
        )

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            plan_workers(0, 0, 1, min_workers=3, max_workers=2)


def _wait(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestAutoscalerOnPool:
    def _pool(self, results, workers=1):
        lock = threading.Lock()

        def on_result(r):
            with lock:
                results.append(r)

        return Pool(
            workers=workers,
            metrics=MetricsRegistry(),
            on_result=on_result,
            poll_seconds=0.01,
        )

    def test_grows_with_queue_depth(self):
        results = []
        pool = self._pool(results)
        scaler = Autoscaler(pool, min_workers=1, max_workers=3)
        try:
            for i in range(5):
                pool.submit(JobSpec(job_id=f"g{i}", grid_size=12, steps=2))
            assert scaler.tick() == 3
            assert pool.workers == 3
            assert _wait(lambda: len(results) == 5)
        finally:
            pool.shutdown(drain=True, timeout=60.0)
        assert scaler.metrics.counter("serve/autoscaler/grow_events") >= 1

    def test_shrink_via_autoscaler_drains_busy_workers(self):
        """Regression: scaling down mid-run must drain, never kill.

        Three workers are busy when the autoscaler decides to shrink to
        one; every in-flight job must still complete its full step budget
        and the excess workers must exit at job boundaries (counted by
        ``farm/pool/drained_exits``), not be terminated.
        """
        results = []
        pool = self._pool(results)
        scaler = Autoscaler(pool, min_workers=1, max_workers=3)
        try:
            for i in range(3):
                pool.submit(JobSpec(job_id=f"s{i}", grid_size=24, steps=8))
            assert scaler.tick() == 3
            assert _wait(lambda: pool.busy == 3)
            # queue is empty but three jobs are running: the policy holds
            # all three workers — busy jobs are demand too
            assert scaler.tick() == 3
            assert _wait(lambda: len(results) == 3)
            # now idle: the autoscaler shrinks to the floor by draining
            assert scaler.tick() == 1
            assert pool.workers == 1
            assert _wait(lambda: pool.alive == 1)
        finally:
            pool.shutdown(drain=True, timeout=60.0)
        assert all(r.ok and r.steps_done == 8 for r in results)
        assert pool.metrics.counter("farm/pool/drained_exits") >= 2
        assert scaler.metrics.counter("serve/autoscaler/shrink_events") >= 1

    def test_shrink_while_workers_still_busy_completes_all_jobs(self):
        """Scale-down decided *while* jobs run: nothing is lost."""
        results = []
        pool = self._pool(results, workers=3)
        scaler = Autoscaler(pool, min_workers=0, max_workers=3)
        try:
            for i in range(3):
                pool.submit(JobSpec(job_id=f"b{i}", grid_size=24, steps=8))
            assert _wait(lambda: pool.busy >= 1)
            pool.resize(0)  # operator override below the running demand
            assert scaler.tick() >= 1  # policy immediately re-grows to demand
            assert _wait(lambda: len(results) == 3)
        finally:
            pool.shutdown(drain=True, timeout=60.0)
        assert all(r.ok and r.steps_done == 8 for r in results)

    def test_snapshot_reports_band_and_load(self):
        pool = self._pool([])
        scaler = Autoscaler(pool, min_workers=1, max_workers=4)
        try:
            snap = scaler.snapshot()
        finally:
            pool.shutdown(drain=True, timeout=30.0)
        assert snap["min_workers"] == 1
        assert snap["max_workers"] == 4
        assert snap["workers"] == 1
        assert snap["queue_depth"] == 0
