"""Result cache: content addressing, LRU eviction, crash-safe persistence."""

import json

from repro.farm import JobResult, JobSpec
from repro.serve import ResultCache


def result(job_id="j", status="completed", divnorm=0.5) -> JobResult:
    return JobResult(
        job_id=job_id, status=status, steps_done=4, solver_used="pcg",
        final_divnorm=divnorm,
    )


def key_of(i: int) -> str:
    return JobSpec(job_id="k", seed=i).cache_key()


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = key_of(0)
        assert cache.put(key, result(divnorm=0.25))
        got = cache.get(key)
        assert got == result(divnorm=0.25)

    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get(key_of(0)) is None

    def test_only_completed_results_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert not cache.put(key_of(0), result(status="failed"))
        assert not cache.put(key_of(1), result(status="cancelled"))
        assert len(cache) == 0

    def test_entries_are_sharded_by_key_prefix(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = key_of(0)
        cache.put(key, result())
        assert (tmp_path / key[:2] / f"{key}.json").is_file()

    def test_no_tmp_files_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(5):
            cache.put(key_of(i), result())
        cache.flush()
        assert not list(tmp_path.rglob("*.tmp"))

    def test_lru_eviction_unlinks_oldest(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        keys = [key_of(i) for i in range(3)]
        for k in keys:
            cache.put(k, result())
        assert cache.get(keys[0]) is None  # evicted
        assert cache.get(keys[1]) is not None
        assert cache.get(keys[2]) is not None
        assert not (tmp_path / keys[0][:2] / f"{keys[0]}.json").exists()
        assert cache.stats()["evictions"] == 1

    def test_get_refreshes_lru_recency(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        a, b, c = key_of(0), key_of(1), key_of(2)
        cache.put(a, result())
        cache.put(b, result())
        cache.get(a)  # a is now most recent: b must be the eviction victim
        cache.put(c, result())
        assert cache.get(a) is not None
        assert cache.get(b) is None

    def test_index_persists_recency_across_restart(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        a, b = key_of(0), key_of(1)
        cache.put(a, result())
        cache.put(b, result())
        cache.get(a)
        cache.flush()

        reopened = ResultCache(tmp_path, max_entries=2)
        reopened.put(key_of(2), result())  # evicts b, the persisted-LRU tail
        assert reopened.get(a) is not None
        assert reopened.get(b) is None

    def test_missing_index_rebuilt_by_scanning_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        keys = [key_of(i) for i in range(3)]
        for k in keys:
            cache.put(k, result())
        # no flush: simulate a crash before the index was ever written
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 3
        assert all(reopened.get(k) is not None for k in keys)

    def test_corrupt_index_rebuilt_by_scanning_shards(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = key_of(0)
        cache.put(key, result())
        cache.flush()
        (tmp_path / "index.json").write_text("{ not json !")
        reopened = ResultCache(tmp_path)
        assert reopened.get(key) is not None

    def test_corrupt_entry_is_dropped_as_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = key_of(0)
        cache.put(key, result())
        (tmp_path / key[:2] / f"{key}.json").write_text("torn garbage")
        assert cache.get(key) is None
        assert key not in cache

    def test_index_ignores_entries_deleted_behind_its_back(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = key_of(0)
        cache.put(key, result())
        cache.flush()
        (tmp_path / key[:2] / f"{key}.json").unlink()
        reopened = ResultCache(tmp_path)
        assert len(reopened) == 0
        assert reopened.get(key) is None

    def test_stats_counts_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = key_of(0)
        cache.get(key)
        cache.put(key, result())
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["entries"] == 1

    def test_index_file_is_valid_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(key_of(0), result())
        cache.flush()
        loaded = json.loads((tmp_path / "index.json").read_text())
        assert loaded["keys"] == [key_of(0)]
