"""Tests for execution records, the success-rate MLP and Eq. 8 selection."""

import numpy as np
import pytest

from repro.core import (
    ExecutionRecord,
    ReferenceCache,
    SuccessRateMLP,
    build_success_mlp,
    collect_execution_records,
    expected_total_time,
    make_training_samples,
    select_runtime_models,
    success_rate,
    MLP_TOPOLOGIES,
)
from repro.data import generate_problems
from repro.models import TrainedModel, tompson_arch


def fake_records(name="m", n=20, q_spread=0.02, t=1.0, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ExecutionRecord(
            model_name=name,
            problem_seed=i,
            grid_size=16,
            quality_loss=float(rng.uniform(0, q_spread)),
            execution_seconds=float(t * rng.uniform(0.8, 1.2)),
            cumdivnorm_final=float(rng.uniform(0, 100)),
        )
        for i in range(n)
    ]


class TestExecutionRecord:
    def test_meets_requirement(self):
        r = ExecutionRecord("m", 0, 16, 0.01, 1.0, 5.0)
        assert r.meets(q=0.02, t=2.0)
        assert not r.meets(q=0.005, t=2.0)
        assert not r.meets(q=0.02, t=0.5)

    def test_success_rate_bounds(self):
        recs = fake_records()
        assert success_rate(recs, q=1e9, t=1e9) == 1.0
        assert success_rate(recs, q=-1.0, t=1e9) == 0.0

    def test_success_rate_empty(self):
        with pytest.raises(ValueError):
            success_rate([], 1.0, 1.0)


class TestReferenceCacheAndCollection:
    def test_reference_cached(self):
        cache = ReferenceCache(n_steps=3)
        probs = generate_problems(1, 16, split="eval")
        a = cache.reference(probs[0])
        b = cache.reference(probs[0])
        assert a is b

    def test_collect_records_structure(self):
        arch = tompson_arch(4)
        arch.name = "t4"
        model = TrainedModel(spec=arch, network=arch.build(rng=0))
        probs = generate_problems(2, 16, split="eval")
        cache = ReferenceCache(n_steps=3)
        recs = collect_execution_records([model], probs, cache, passes=1)
        assert len(recs) == 2
        for r in recs:
            assert r.model_name == "t4"
            assert r.quality_loss >= 0
            assert r.execution_seconds > 0
            assert r.cumdivnorm_final >= 0


class TestSuccessMLP:
    def test_all_topologies_build(self):
        for name in MLP_TOPOLOGIES:
            net = build_success_mlp(name, rng=0)
            out = net.forward(np.zeros((2, 48)))
            assert out.shape == (2, 1)
            assert (0 <= out).all() and (out <= 1).all()

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            build_success_mlp("mlp9")

    def test_topology_depths_ordered(self):
        widths = [len(MLP_TOPOLOGIES[f"mlp{i}"]) for i in range(1, 6)]
        assert widths == sorted(widths)

    def test_sample_generation_labels_in_unit_interval(self):
        arch = tompson_arch(4)
        arch.name = "m"
        feats, labels = make_training_samples(fake_records(), {"m": arch}, 32, rng=0)
        assert feats.shape == (32, 48)
        assert labels.shape == (32, 1)
        assert (labels >= 0).all() and (labels <= 1).all()

    def test_sample_generation_missing_arch(self):
        with pytest.raises(KeyError):
            make_training_samples(fake_records(), {}, 8, rng=0)

    def test_fit_learns_requirement_sensitivity(self):
        """A trained MLP must predict higher success for looser requirements."""
        arch = tompson_arch(4)
        arch.name = "m"
        recs = fake_records(n=60, q_spread=0.02, t=1.0)
        mlp = SuccessRateMLP.fit(recs, {"m": arch}, epochs=200, n_samples_per_model=128, rng=0)
        tight = mlp.predict(arch, q=0.001, t=0.5)
        loose = mlp.predict(arch, q=0.05, t=2.0)
        assert loose > tight

    def test_predict_many(self):
        arch = tompson_arch(4)
        arch.name = "m"
        recs = fake_records(n=30)
        mlp = SuccessRateMLP.fit(recs, {"m": arch}, epochs=30, rng=0)
        model = TrainedModel(spec=arch, network=arch.build(rng=0))
        out = mlp.predict_many([model], 0.01, 1.0)
        assert set(out) == {"m"}


class TestSelection:
    def test_expected_total_time(self):
        assert expected_total_time(1.0, 2.0, 100.0) == 2.0
        assert expected_total_time(0.0, 2.0, 100.0) == 100.0
        assert expected_total_time(0.5, 2.0, 100.0) == 51.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            expected_total_time(1.5, 1.0, 1.0)

    def _mlp_and_models(self):
        archs = []
        models = []
        for i, ch in enumerate((4, 6)):
            arch = tompson_arch(ch)
            arch.name = f"m{ch}"
            archs.append(arch)
            models.append(TrainedModel(spec=arch, network=arch.build(rng=i)))
        recs = fake_records("m4", t=1.0, seed=1) + fake_records("m6", t=2.0, seed=2)
        mlp = SuccessRateMLP.fit(recs, {a.name: a for a in archs}, epochs=40, rng=0)
        return models, mlp

    def test_select_respects_budget(self):
        models, mlp = self._mlp_and_models()
        times = {"m4": 1.0, "m6": 2.0}
        none = select_runtime_models(models, times, mlp, q=0.01, t=0.0001, exact_seconds=100.0)
        assert none == []
        some = select_runtime_models(models, times, mlp, q=0.05, t=1e6, exact_seconds=100.0)
        assert 1 <= len(some) <= 2

    def test_select_caps_count(self):
        models, mlp = self._mlp_and_models()
        times = {"m4": 1.0, "m6": 2.0}
        out = select_runtime_models(models, times, mlp, 0.05, 1e6, 100.0, max_models=1)
        assert len(out) == 1

    def test_select_sorted_by_probability(self):
        models, mlp = self._mlp_and_models()
        times = {"m4": 1.0, "m6": 2.0}
        out = select_runtime_models(models, times, mlp, 0.05, 1e6, 100.0)
        probs = [s.success_prob for s in out]
        assert probs == sorted(probs, reverse=True)

    def test_select_missing_time(self):
        models, mlp = self._mlp_and_models()
        with pytest.raises(KeyError):
            select_runtime_models(models, {}, mlp, 0.05, 1.0, 100.0)
