"""Tests for the quality-aware model-switch runtime (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveController,
    QlossKNNPredictor,
    SelectedModel,
)
from repro.data import InputProblem
from repro.fluid import FluidSimulator, RestartRequested
from repro.models import TrainedModel, tompson_arch


def make_selected(name, seconds, prob, channels=4, rng=0):
    arch = tompson_arch(channels)
    arch.name = name
    model = TrainedModel(spec=arch, network=arch.build(rng=rng))
    return SelectedModel(model=model, success_prob=prob, model_seconds=seconds, expected_seconds=seconds)


def make_knn(entries: dict[str, float], spread=0.0):
    """KNN that predicts a fixed qloss per model regardless of cumdivnorm."""
    knn = QlossKNNPredictor(k=2)
    for name, q in entries.items():
        knn.add_database(name, [(0.0, q), (1e12, q)])
    return knn


def run_sim(controller, steps=16, seed=0):
    grid, source = InputProblem(16, seed).materialize()
    sim = FluidSimulator(grid, controller.initial_solver(), source, controller=controller)
    return sim.run(steps)


class TestControllerConstruction:
    def test_needs_candidates(self):
        with pytest.raises(ValueError):
            AdaptiveController([], make_knn({}), 0.01, 16)

    def test_needs_reasonable_interval(self):
        with pytest.raises(ValueError):
            AdaptiveController([make_selected("a", 1.0, 0.9)], make_knn({"a": 0.01}), 0.01, 16, check_interval=2)

    def test_mlp_start_picks_highest_probability(self):
        cands = [make_selected("fast", 1.0, 0.5), make_selected("slow", 2.0, 0.9, rng=1)]
        ctl = AdaptiveController(cands, make_knn({"fast": 0.01, "slow": 0.01}), 0.01, 16)
        assert ctl.current.name == "slow"

    def test_no_mlp_start_picks_fastest(self):
        cands = [make_selected("fast", 1.0, 0.5), make_selected("slow", 2.0, 0.9, rng=1)]
        ctl = AdaptiveController(
            cands, make_knn({"fast": 0.01, "slow": 0.01}), 0.01, 16, use_mlp_start=False
        )
        assert ctl.current.name == "fast"

    def test_ladder_sorted_by_time(self):
        cands = [make_selected("slow", 3.0, 0.9), make_selected("fast", 1.0, 0.5, rng=1)]
        ctl = AdaptiveController(cands, make_knn({"slow": 0.01, "fast": 0.01}), 0.01, 16)
        assert [s.name for s in ctl.ladder] == ["fast", "slow"]


class TestSwitchingBehaviour:
    def test_keeps_model_when_prediction_close(self):
        cands = [make_selected("fast", 1.0, 0.5), make_selected("slow", 2.0, 0.9, rng=1)]
        # predicted qloss exactly the requirement -> stay
        ctl = AdaptiveController(cands, make_knn({"fast": 0.01, "slow": 0.01}), 0.01, 16)
        run_sim(ctl)
        assert ctl.stats.switches == []

    def test_downgrades_when_quality_abundant(self):
        cands = [make_selected("fast", 1.0, 0.5), make_selected("slow", 2.0, 0.9, rng=1)]
        # prediction far below requirement -> move to the faster model
        ctl = AdaptiveController(cands, make_knn({"fast": 0.001, "slow": 0.001}), 0.5, 16)
        run_sim(ctl)
        assert any(s.to_model == "fast" for s in ctl.stats.switches)
        assert ctl.current.name == "fast"

    def test_upgrades_when_quality_violated(self):
        cands = [make_selected("fast", 1.0, 0.9), make_selected("slow", 2.0, 0.5, rng=1)]
        knn = make_knn({"fast": 0.9, "slow": 0.005})
        ctl = AdaptiveController(cands, knn, 0.01, 16)
        run_sim(ctl)
        assert any(s.to_model == "slow" for s in ctl.stats.switches)

    def test_restart_when_no_better_model(self):
        cands = [make_selected("only", 1.0, 0.9)]
        knn = make_knn({"only": 0.9})  # always predicted to violate
        ctl = AdaptiveController(cands, knn, 0.01, 16)
        with pytest.raises(RestartRequested):
            run_sim(ctl)
        assert ctl.stats.restart_requested

    def test_escalates_to_nn_precond_instead_of_restarting(self):
        from repro.fluid import NNPCGSolver

        cands = [make_selected("only", 1.0, 0.9)]
        knn = make_knn({"only": 0.9})  # always predicted to violate
        nn_pcg = NNPCGSolver(cands[0].model.network)
        ctl = AdaptiveController(cands, knn, 0.01, 16, nn_pcg=nn_pcg)
        res = run_sim(ctl)  # no RestartRequested
        assert len(res.records) == 16
        assert not ctl.stats.restart_requested
        assert ctl.stats.nn_precond_step is not None
        # all post-escalation steps are accounted to the exact solver
        assert ctl.stats.steps_per_model.get(nn_pcg.name, 0) > 0

    def test_escalation_records_a_switch_event(self):
        from repro.fluid import NNPCGSolver

        cands = [make_selected("only", 1.0, 0.9)]
        knn = make_knn({"only": 0.9})
        nn_pcg = NNPCGSolver(cands[0].model.network)
        ctl = AdaptiveController(cands, knn, 0.01, 16, nn_pcg=nn_pcg)
        run_sim(ctl)
        assert any(s.to_model == nn_pcg.name for s in ctl.stats.switches)

    def test_upgrade_only_sticks_after_satisfied(self):
        cands = [make_selected("fast", 1.0, 0.5), make_selected("slow", 2.0, 0.9, rng=1)]
        knn = make_knn({"fast": 0.0001, "slow": 0.0001})
        ctl = AdaptiveController(cands, knn, 0.5, 16, use_mlp_start=False, upgrade_only=True)
        run_sim(ctl)
        # satisfied immediately on the fastest model; never downgraded (it's
        # already fastest) and never upgraded
        assert ctl.stats.switches == []
        assert ctl.current.name == "fast"

    def test_missing_database_keeps_running(self):
        cands = [make_selected("nodb", 1.0, 0.9)]
        ctl = AdaptiveController(cands, QlossKNNPredictor(), 0.01, 16)
        res = run_sim(ctl)
        assert len(res.records) == 16
        assert ctl.stats.switches == []


class TestStats:
    def test_steps_accounted_per_model(self):
        cands = [make_selected("fast", 1.0, 0.5), make_selected("slow", 2.0, 0.9, rng=1)]
        knn = make_knn({"fast": 0.001, "slow": 0.001})
        ctl = AdaptiveController(cands, knn, 0.5, 16)
        run_sim(ctl)
        assert sum(ctl.stats.steps_per_model.values()) == 16

    def test_time_share_sums_to_one(self):
        cands = [make_selected("a", 1.0, 0.9)]
        ctl = AdaptiveController(cands, make_knn({"a": 0.01}), 0.01, 16)
        run_sim(ctl)
        share = ctl.stats.time_share()
        assert sum(share.values()) == pytest.approx(1.0)

    def test_predictions_logged_each_interval(self):
        cands = [make_selected("a", 1.0, 0.9)]
        ctl = AdaptiveController(cands, make_knn({"a": 0.01}), 0.01, 20)
        run_sim(ctl, steps=20)
        # intervals end at steps 9 and 14 (skip 5, every 5, last suppressed)
        assert len(ctl.stats.predictions) == 2
