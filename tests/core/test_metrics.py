"""Tests for quality metrics and correlation coefficients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    correlation_strength,
    cum_divnorm,
    pearson_r,
    quality_loss,
    spearman_r,
)


class TestQualityLoss:
    def test_zero_for_identical(self):
        rho = np.random.default_rng(0).random((8, 8))
        assert quality_loss(rho, rho) == 0.0

    def test_positive_for_different(self):
        rho = np.random.default_rng(0).random((8, 8))
        assert quality_loss(rho, rho + 0.1) > 0

    def test_relative_normalisation(self):
        rho = np.full((4, 4), 2.0)
        approx = np.full((4, 4), 2.2)
        assert quality_loss(rho, approx) == pytest.approx(0.1)

    def test_scale_invariance(self):
        rng = np.random.default_rng(1)
        rho = rng.random((8, 8)) + 0.5
        approx = rho + rng.random((8, 8)) * 0.1
        assert quality_loss(rho, approx) == pytest.approx(quality_loss(10 * rho, 10 * approx))

    def test_empty_reference_guard(self):
        rho = np.zeros((4, 4))
        approx = np.full((4, 4), 0.5)
        assert quality_loss(rho, approx) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            quality_loss(np.zeros((4, 4)), np.zeros((4, 5)))

    def test_symmetric_in_error_sign(self):
        rho = np.full((4, 4), 1.0)
        assert quality_loss(rho, rho + 0.2) == pytest.approx(quality_loss(rho, rho - 0.2))


class TestCumDivnorm:
    def test_cumulative_sum(self):
        np.testing.assert_allclose(cum_divnorm([1.0, 2.0, 3.0]), [1.0, 3.0, 6.0])

    def test_monotone_for_nonnegative(self):
        c = cum_divnorm(np.abs(np.random.default_rng(0).standard_normal(20)))
        assert (np.diff(c) >= 0).all()


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson_r(x, 3 * x + 1) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson_r(x, -x) == pytest.approx(-1.0)

    def test_constant_input_is_zero(self):
        assert pearson_r(np.ones(5), np.arange(5.0)) == 0.0

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        assert abs(pearson_r(rng.standard_normal(5000), rng.standard_normal(5000))) < 0.05

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson_r(np.array([1.0]), np.array([2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson_r(np.arange(3.0), np.arange(4.0))

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_bounded(self, seed):
        rng = np.random.default_rng(seed)
        x, y = rng.standard_normal(20), rng.standard_normal(20)
        assert -1.0 - 1e-12 <= pearson_r(x, y) <= 1.0 + 1e-12


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = np.arange(1.0, 11.0)
        assert spearman_r(x, np.exp(x)) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        x = np.arange(10.0)
        assert spearman_r(x, x[::-1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        x = np.array([1.0, 2.0, 2.0, 3.0])
        y = np.array([1.0, 2.0, 2.0, 3.0])
        assert spearman_r(x, y) == pytest.approx(1.0)

    def test_robust_to_outliers_vs_pearson(self):
        x = np.arange(20.0)
        y = x.copy()
        y[-1] = 1e6  # preserves order, wrecks linearity
        assert spearman_r(x, y) == pytest.approx(1.0)
        assert pearson_r(x, y) < spearman_r(x, y)


class TestCorrelationStrength:
    @pytest.mark.parametrize(
        "r,label",
        [(0.05, "none"), (0.2, "weak"), (0.4, "medium"), (0.61, "strong"), (-0.79, "strong")],
    )
    def test_bands(self, r, label):
        assert correlation_strength(r) == label
