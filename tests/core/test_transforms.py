"""Tests for the four model-transformation operations."""

import numpy as np
import pytest

from repro.core import dropout, inherit_matching_weights, narrow, pooling, shallow
from repro.models import TrainedModel, tompson_arch


def make_model(channels=6, rng=0):
    arch = tompson_arch(channels=channels)
    arch.name = "base"
    return TrainedModel(spec=arch, network=arch.build(rng=rng))


def forward_of(model, x):
    return model.network.forward(x)


X = np.random.default_rng(42).standard_normal((2, 2, 8, 8))


class TestShallow:
    def test_removes_one_stage(self):
        child = shallow(make_model(), stage=2, rng=0)
        assert child.spec.n_stages == 4
        assert "shallow2" in child.name

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            shallow(make_model(), stage=9)

    def test_single_stage_protected(self):
        from repro.models import ArchSpec, StageSpec

        one = ArchSpec([StageSpec(channels=4)], name="one")
        model = TrainedModel(spec=one, network=one.build(rng=0))
        with pytest.raises(ValueError):
            shallow(model, 0)

    def test_weights_inherited_before_cut(self):
        parent = make_model()
        child = shallow(parent, stage=3, rng=1)
        p_convs = parent.spec.stage_convs(parent.network)
        c_convs = child.spec.stage_convs(child.network)
        np.testing.assert_array_equal(c_convs[0].weight.value, p_convs[0].weight.value)
        np.testing.assert_array_equal(c_convs[2].weight.value, p_convs[2].weight.value)

    def test_child_runs(self):
        child = shallow(make_model(), stage=1, rng=0)
        assert forward_of(child, X).shape == (2, 1, 8, 8)

    def test_child_is_faster(self):
        parent = make_model()
        child = shallow(parent, stage=1, rng=0)
        assert child.network.flops((2, 16, 16)) < parent.network.flops((2, 16, 16))

    def test_parent_untouched(self):
        parent = make_model()
        before = [p.value.copy() for p in parent.network.parameters()]
        shallow(parent, stage=0, rng=0)
        for p, b in zip(parent.network.parameters(), before):
            np.testing.assert_array_equal(p.value, b)


class TestNarrow:
    def test_reduces_channels(self):
        child = narrow(make_model(channels=10), stage=2, rng=0)
        assert child.spec.stages[2].channels == 9  # r = |L|/10 = 1

    def test_explicit_r(self):
        child = narrow(make_model(channels=10), stage=2, r=4, rng=0)
        assert child.spec.stages[2].channels == 6

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            narrow(make_model(channels=4), stage=0, r=4)

    def test_weights_sliced_exactly(self):
        """The narrowed model must compute the parent function restricted to
        the kept channels: check by zeroing the dropped channel's influence."""
        parent = make_model(channels=6, rng=3)
        child = narrow(parent, stage=1, r=1, rng=7)
        keep = child.metadata["kept"]
        p_convs = parent.spec.stage_convs(parent.network)
        c_convs = child.spec.stage_convs(child.network)
        np.testing.assert_array_equal(c_convs[1].weight.value, p_convs[1].weight.value[keep])
        np.testing.assert_array_equal(c_convs[2].weight.value, p_convs[2].weight.value[:, keep])

    def test_child_runs_and_is_cheaper(self):
        parent = make_model(channels=8)
        child = narrow(parent, stage=2, r=3, rng=0)
        assert forward_of(child, X).shape == (2, 1, 8, 8)
        assert child.network.flops((2, 16, 16)) < parent.network.flops((2, 16, 16))

    def test_residual_dropped_when_channels_break(self):
        from repro.models import ArchSpec, StageSpec

        arch = ArchSpec([StageSpec(channels=6), StageSpec(channels=6, residual=True)], name="r")
        model = TrainedModel(spec=arch, network=arch.build(rng=0))
        child = narrow(model, stage=1, r=2, rng=0)
        assert child.spec.stages[1].residual is False


class TestPooling:
    def test_sets_pool_and_unpool(self):
        child = pooling(make_model(), stage=2, rng=0)
        assert child.spec.stages[2].pool == 2
        assert child.spec.stages[2].unpool == 2

    def test_already_pooled_rejected(self):
        child = pooling(make_model(), stage=2, rng=0)
        with pytest.raises(ValueError):
            pooling(child, stage=2)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            pooling(make_model(), stage=0, factor=3)

    def test_weights_fully_inherited(self):
        parent = make_model(rng=5)
        child = pooling(parent, stage=1, rng=0)
        p_convs = parent.spec.stage_convs(parent.network)
        c_convs = child.spec.stage_convs(child.network)
        for pc, cc in zip(p_convs, c_convs):
            np.testing.assert_array_equal(cc.weight.value, pc.weight.value)

    def test_child_cheaper(self):
        parent = make_model()
        child = pooling(parent, stage=2, rng=0)
        assert child.network.flops((2, 16, 16)) < parent.network.flops((2, 16, 16))

    def test_child_preserves_grid_shape(self):
        child = pooling(make_model(), stage=0, rng=0)
        assert forward_of(child, X).shape == (2, 1, 8, 8)


class TestDropout:
    def test_sets_probability(self):
        child = dropout(make_model(), stage=1, p=0.2, rng=0)
        assert child.spec.stages[1].dropout == 0.2

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            dropout(make_model(), stage=0, p=0.0)

    def test_inference_function_preserved(self):
        """Dropout is identity at inference, so the child must reproduce the
        parent's outputs exactly (weights are fully inherited)."""
        parent = make_model(rng=9)
        child = dropout(parent, stage=2, p=0.1, rng=0)
        np.testing.assert_allclose(forward_of(child, X), forward_of(parent, X), atol=1e-12)


class TestInheritMatchingWeights:
    def test_copies_only_matching(self):
        parent = make_model(channels=6)
        spec = parent.spec.copy()
        spec.stages[1].channels = 3  # mismatched stage
        net = spec.build(rng=1)
        copied = inherit_matching_weights(
            parent.spec, parent.network, spec, net, {i: i for i in range(5)}
        )
        # stage 1 and stage 2 (input side) mismatch; others copy, plus 1x1
        assert copied == 4
