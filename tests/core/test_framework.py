"""End-to-end tests of the Smart-fluidnet framework (micro scale)."""

import numpy as np
import pytest

from repro.core import (
    ConstructionConfig,
    OfflineConfig,
    SearchConfig,
    SmartFluidnet,
    UserRequirement,
)
from repro.data import generate_problems


def micro_config(**overrides) -> OfflineConfig:
    cfg = OfflineConfig(
        grid_size=16,
        n_train_problems=2,
        n_calibration_problems=2,
        n_small_problems=3,
        small_grid_size=16,
        train_steps=4,
        eval_steps=10,
        base_epochs=6,
        rollout_rounds=0,
        search=SearchConfig(
            iterations=1, proposals_per_iteration=2, evaluations_per_iteration=1,
            train_epochs=2, keep=2,
        ),
        construction=ConstructionConfig(
            n_shallow=2, narrows_per_model=1, n_dropout=1, fine_tune_epochs=1
        ),
        mlp_epochs=40,
    )
    for k, v in overrides.items():
        setattr(cfg, k, v)
    return cfg


@pytest.fixture(scope="module")
def framework():
    return SmartFluidnet.build_offline(config=micro_config(), rng=0)


class TestOfflineBuild:
    def test_runtime_models_selected(self, framework):
        assert 1 <= len(framework.runtime_models) <= 5
        names = [s.name for s in framework.runtime_models]
        assert len(set(names)) == len(names)

    def test_candidates_are_pareto_subset(self, framework):
        assert 0 < len(framework.candidates) <= 1 + 2 + 7  # base + accurate + family

    def test_default_requirement_from_base_model(self, framework):
        assert framework.requirement.q > 0
        assert framework.requirement.t > 0

    def test_knn_databases_cover_runtime_models(self, framework):
        for sel in framework.runtime_models:
            assert framework.knn.database_size(sel.name) > 0

    def test_records_collected_for_all_models(self, framework):
        names = {r.model_name for r in framework.records}
        assert "tompson" in names

    def test_exact_seconds_positive(self, framework):
        assert framework.exact_seconds > 0

    def test_explicit_requirement_respected(self):
        req = UserRequirement(q=0.5, t=100.0)
        sf = SmartFluidnet.build_offline(
            requirement=req, config=micro_config(run_search=False), rng=1
        )
        assert sf.requirement == req

    def test_needs_runtime_models(self):
        with pytest.raises(ValueError):
            SmartFluidnet(runtime_models=[], knn=None, requirement=UserRequirement(0.1, 1.0))


class TestOnlineRun:
    def test_run_completes(self, framework):
        prob = generate_problems(1, 16, split="eval")[0]
        run = framework.run(prob)
        assert len(run.result.records) == framework.config.eval_steps
        assert run.total_seconds > 0
        assert sum(run.stats.steps_per_model.values()) == framework.config.eval_steps

    def test_run_deterministic_density_given_same_decisions(self, framework):
        prob = generate_problems(1, 16, split="eval")[0]
        a = framework.run(prob)
        b = framework.run(prob)
        np.testing.assert_allclose(a.result.density, b.result.density)

    def test_evaluate_returns_quality(self, framework):
        probs = generate_problems(2, 16, split="eval")
        out = framework.evaluate(probs)
        assert len(out) == 2
        for run, q in out:
            assert q >= 0.0

    def test_no_mlp_mode_runs(self, framework):
        prob = generate_problems(1, 16, split="eval")[0]
        run = framework.run(prob, use_mlp_start=False, upgrade_only=True)
        assert len(run.result.records) == framework.config.eval_steps

    def test_restart_fallback_produces_exact_run(self):
        """Force an impossible requirement: the controller must restart with
        PCG and still deliver a full result."""
        sf = SmartFluidnet.build_offline(
            requirement=UserRequirement(q=1e-9, t=1e9),
            config=micro_config(run_search=False),
            rng=2,
        )
        prob = generate_problems(1, 16, split="eval")[0]
        run = sf.run(prob)
        if run.restarted:  # KNN may legitimately predict success on tiny dbs
            assert len(run.result.records) == sf.config.eval_steps
            assert run.result.records[-1].projection.solver_name == "pcg"
