"""Hypothesis property tests over the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BinarySearchTree,
    expected_total_time,
    pareto_front,
    pearson_r,
    quality_loss,
    spearman_r,
)
from repro.core.regression import fit_linear_trend
from repro.models import ArchSpec, StageSpec


stage_strategy = st.builds(
    StageSpec,
    kernel=st.sampled_from([1, 3, 5]),
    channels=st.integers(1, 16),
    pool=st.sampled_from([1, 2]),
    unpool=st.just(1),
    dropout=st.floats(0.0, 0.5, exclude_max=True),
    residual=st.booleans(),
).map(lambda s: StageSpec(s.kernel, s.channels, s.pool, s.pool, s.dropout, s.residual))

arch_strategy = st.builds(
    ArchSpec,
    stages=st.lists(stage_strategy, min_size=1, max_size=9),
    in_channels=st.just(2),
    name=st.text(alphabet="abcdef", min_size=1, max_size=8),
)


class TestArchSpecProperties:
    @given(arch=arch_strategy)
    @settings(max_examples=50, deadline=None)
    def test_serialisation_roundtrip(self, arch):
        assert ArchSpec.from_dict(arch.to_dict()) == arch

    @given(arch=arch_strategy)
    @settings(max_examples=30, deadline=None)
    def test_feature_vectors_always_padded(self, arch):
        vecs = arch.architecture_vectors()
        for v in vecs.values():
            assert v.shape == (9,)
            assert (v[arch.n_stages :] == 0).all()

    @given(arch=arch_strategy)
    @settings(max_examples=15, deadline=None)
    def test_built_network_maps_grid_to_grid(self, arch):
        net = arch.build(rng=0)
        x = np.zeros((1, 2, 8, 8))
        assert net.forward(x).shape == (1, 1, 8, 8)


class TestBSTProperties:
    @given(keys=st.lists(st.floats(-1e9, 1e9), min_size=1, max_size=200, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_balanced_build_height_logarithmic(self, keys):
        tree = BinarySearchTree.from_pairs([(k, None) for k in keys])
        assert tree.height() <= int(np.ceil(np.log2(len(keys) + 1)))

    @given(
        keys=st.lists(st.floats(-1e3, 1e3), min_size=2, max_size=50, unique=True),
        q=st.floats(-1e3, 1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_nearest_one_is_global_minimum_distance(self, keys, q):
        tree = BinarySearchTree.from_pairs([(k, None) for k in keys])
        (key, _), = tree.nearest(q, 1)
        assert abs(key - q) == min(abs(k - q) for k in keys)


class TestMetricProperties:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_quality_loss_nonnegative_and_zero_iff_equal(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.random((6, 6))
        b = rng.random((6, 6))
        assert quality_loss(a, a) == 0.0
        assert quality_loss(a, b) >= 0.0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_quality_loss_triangleish(self, seed):
        # qloss(a, c) <= qloss(a, b) + qloss(a, b->c path) via shared scale
        rng = np.random.default_rng(seed)
        a = rng.random((6, 6)) + 0.5
        b = rng.random((6, 6))
        c = rng.random((6, 6))
        assert quality_loss(a, c) <= quality_loss(a, b) + np.abs(b - c).mean() / np.abs(a).mean() + 1e-12

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_correlations_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(15)
        y = rng.standard_normal(15)
        assert pearson_r(x, y) == pytest.approx(pearson_r(y, x))
        assert spearman_r(x, y) == pytest.approx(spearman_r(y, x))

    @given(
        seed=st.integers(0, 10_000),
        a=st.floats(0.1, 10.0),
        b=st.floats(-5.0, 5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_correlations_invariant_to_affine_maps(self, seed, a, b):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(20)
        y = rng.standard_normal(20)
        assert pearson_r(a * x + b, y) == pytest.approx(pearson_r(x, y), abs=1e-9)
        assert spearman_r(a * x + b, y) == pytest.approx(spearman_r(x, y), abs=1e-9)


class TestParetoProperties:
    @given(seed=st.integers(0, 10_000), n=st.integers(1, 40))
    @settings(max_examples=30, deadline=None)
    def test_front_idempotent(self, seed, n):
        rng = np.random.default_rng(seed)
        pts = rng.random((n, 2))
        idx = pareto_front(pts)
        again = pareto_front(pts[idx])
        assert len(again) == len(idx)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_adding_dominated_point_leaves_front_unchanged(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((15, 2))
        idx = pareto_front(pts)
        front = {tuple(p) for p in pts[idx]}
        dominated = pts[idx[0]] + 1.0  # strictly worse than a front member
        idx2 = pareto_front(np.vstack([pts, dominated]))
        front2 = {tuple(p) for p in np.vstack([pts, dominated])[idx2]}
        assert front == front2


class TestSelectionProperties:
    @given(
        r=st.floats(0.0, 1.0),
        tm=st.floats(0.001, 10.0),
        tx=st.floats(10.0, 1000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_expected_time_between_extremes(self, r, tm, tx):
        e = expected_total_time(r, tm, tx)
        assert min(tm, tx) - 1e-9 <= e <= max(tm, tx) + 1e-9

    @given(
        tm=st.floats(0.001, 10.0),
        tx=st.floats(10.0, 1000.0),
        r1=st.floats(0.0, 1.0),
        r2=st.floats(0.0, 1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_expected_time_monotone_in_probability(self, tm, tx, r1, r2):
        lo, hi = sorted([r1, r2])
        assert expected_total_time(hi, tm, tx) <= expected_total_time(lo, tm, tx) + 1e-9


class TestRegressionProperties:
    @given(
        slope=st.floats(-10, 10),
        intercept=st.floats(-10, 10),
        n=st.integers(2, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_recovery_of_lines(self, slope, intercept, n):
        xs = np.arange(float(n))
        trend = fit_linear_trend(xs, slope * xs + intercept)
        assert trend.slope == pytest.approx(slope, abs=1e-6)
        assert trend.intercept == pytest.approx(intercept, abs=1e-6)
