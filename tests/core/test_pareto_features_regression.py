"""Tests for Pareto selection, feature vectors and trend regression."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FEATURE_DIM,
    FeatureScaler,
    LinearTrend,
    build_feature_vector,
    fit_linear_trend,
    pareto_front,
    pareto_select,
    predict_final_cumdivnorm,
)
from repro.models import tompson_arch


class TestParetoFront:
    def test_single_point(self):
        np.testing.assert_array_equal(pareto_front([[1.0, 1.0]]), [0])

    def test_dominated_point_removed(self):
        idx = pareto_front([[1.0, 1.0], [2.0, 2.0]])
        np.testing.assert_array_equal(idx, [0])

    def test_trade_off_points_kept(self):
        idx = pareto_front([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        assert len(idx) == 3

    def test_duplicate_points_all_kept(self):
        idx = pareto_front([[1.0, 1.0], [1.0, 1.0]])
        assert len(idx) == 2  # neither strictly dominates the other

    def test_sorted_by_first_objective(self):
        idx = pareto_front([[3.0, 1.0], [1.0, 3.0], [2.0, 2.0]])
        np.testing.assert_array_equal(idx, [1, 2, 0])

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            pareto_front(np.zeros(3))

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_front_is_mutually_nondominated(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((30, 2))
        idx = pareto_front(pts)
        front = pts[idx]
        for i in range(len(front)):
            for j in range(len(front)):
                if i == j:
                    continue
                dominates = (front[j] <= front[i]).all() and (front[j] < front[i]).any()
                assert not dominates

    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_every_excluded_point_is_dominated(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((25, 2))
        idx = set(pareto_front(pts).tolist())
        for i in range(len(pts)):
            if i in idx:
                continue
            dominated = any(
                (pts[j] <= pts[i]).all() and (pts[j] < pts[i]).any() for j in range(len(pts))
            )
            assert dominated


class TestParetoSelect:
    def test_returns_items(self):
        items = ["slow-good", "mid", "fast-bad", "dominated"]
        out = pareto_select(items, [3.0, 2.0, 1.0, 3.0], [1.0, 2.0, 3.0, 3.0])
        assert out == ["fast-bad", "mid", "slow-good"]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pareto_select(["a"], [1.0, 2.0], [1.0])

    def test_empty(self):
        assert pareto_select([], [], []) == []


class TestFeatureVector:
    def test_dimension(self):
        f = build_feature_vector(0.01, 5.0, tompson_arch())
        assert f.shape == (FEATURE_DIM,)
        assert FEATURE_DIM == 48

    def test_leading_components(self):
        arch = tompson_arch(channels=7)
        f = build_feature_vector(0.02, 9.0, arch)
        assert f[0] == 0.02 and f[1] == 9.0 and f[2] == 5.0

    def test_architecture_blocks(self):
        arch = tompson_arch(channels=7)
        f = build_feature_vector(0.0, 0.0, arch)
        ker = f[3:12]
        chn = f[12:21]
        assert (ker[:5] == 3).all() and (ker[5:] == 0).all()
        assert (chn[:5] == 7).all()

    def test_distinguishes_architectures(self):
        a = build_feature_vector(0.01, 1.0, tompson_arch(channels=8))
        b = build_feature_vector(0.01, 1.0, tompson_arch(channels=4))
        assert not np.array_equal(a, b)


class TestFeatureScaler:
    def test_standardises(self):
        rng = np.random.default_rng(0)
        feats = rng.random((50, FEATURE_DIM)) * 10 + 3
        scaler = FeatureScaler().fit(feats)
        z = scaler.transform(feats)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_columns_pass_through(self):
        feats = np.ones((10, FEATURE_DIM))
        scaler = FeatureScaler().fit(feats)
        z = scaler.transform(feats)
        assert np.isfinite(z).all()

    def test_transform_requires_fit(self):
        with pytest.raises(RuntimeError):
            FeatureScaler().transform(np.ones((1, FEATURE_DIM)))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            FeatureScaler().fit(np.ones((5, 7)))


class TestLinearTrend:
    def test_exact_line_recovered(self):
        steps = np.arange(5.0)
        trend = fit_linear_trend(steps, 2.0 * steps + 1.0)
        assert trend.slope == pytest.approx(2.0)
        assert trend.intercept == pytest.approx(1.0)
        assert trend(10.0) == pytest.approx(21.0)

    def test_least_squares_on_noise(self):
        rng = np.random.default_rng(0)
        steps = np.arange(50.0)
        vals = 3.0 * steps + rng.standard_normal(50) * 0.01
        trend = fit_linear_trend(steps, vals)
        assert trend.slope == pytest.approx(3.0, abs=0.01)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_linear_trend(np.array([1.0]), np.array([2.0]))


class TestPredictFinalCumdivnorm:
    def test_linear_history_predicts_exactly(self):
        history = 2.0 * np.arange(10.0) + 5.0
        pred = predict_final_cumdivnorm(history, final_step=50)
        assert pred == pytest.approx(2.0 * 49 + 5.0)

    def test_uses_only_recent_window(self):
        # early garbage must not affect the prediction
        history = np.concatenate([np.full(5, 100.0), 2.0 * np.arange(5, 15) + 1.0])
        pred = predict_final_cumdivnorm(history, final_step=30)
        assert pred == pytest.approx(2.0 * 29 + 1.0)

    def test_never_below_current_value(self):
        # a decreasing tail cannot predict less than what already accumulated
        history = np.array([0.0, 10.0, 20.0, 21.0, 21.5, 21.6, 21.6])
        pred = predict_final_cumdivnorm(history, final_step=100)
        assert pred >= history[-1]

    def test_requires_full_interval(self):
        with pytest.raises(ValueError):
            predict_final_cumdivnorm(np.arange(3.0), final_step=10, check_interval=5)
