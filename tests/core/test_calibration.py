"""Tests for the calibrated-MLP selection wrapper and scheduler hysteresis."""

import numpy as np
import pytest

from repro.core import AdaptiveController, QlossKNNPredictor, SelectedModel
from repro.core.framework import _CalibratedMLP
from repro.data import InputProblem
from repro.fluid import FluidSimulator
from repro.models import TrainedModel, tompson_arch


class FakeMLP:
    def __init__(self, value):
        self.value = value

    def predict(self, spec, q, t):
        return self.value


class TestCalibratedMLP:
    def test_blends_with_empirical(self):
        arch = tompson_arch(4)
        arch.name = "m"
        cal = _CalibratedMLP(FakeMLP(1.0), {"m": 0.0}, weight=0.5)
        assert cal.predict(arch, 0.1, 1.0) == pytest.approx(0.5)

    def test_passthrough_without_empirical(self):
        arch = tompson_arch(4)
        arch.name = "unknown"
        cal = _CalibratedMLP(FakeMLP(0.7), {"m": 0.0})
        assert cal.predict(arch, 0.1, 1.0) == pytest.approx(0.7)

    def test_weight_extremes(self):
        arch = tompson_arch(4)
        arch.name = "m"
        trust_mlp = _CalibratedMLP(FakeMLP(0.9), {"m": 0.1}, weight=1.0)
        trust_emp = _CalibratedMLP(FakeMLP(0.9), {"m": 0.1}, weight=0.0)
        assert trust_mlp.predict(arch, 0, 0) == pytest.approx(0.9)
        assert trust_emp.predict(arch, 0, 0) == pytest.approx(0.1)


def make_selected(name, seconds, prob, rng=0):
    arch = tompson_arch(4)
    arch.name = name
    model = TrainedModel(spec=arch, network=arch.build(rng=rng))
    return SelectedModel(model=model, success_prob=prob, model_seconds=seconds, expected_seconds=seconds)


def fixed_knn(entries):
    knn = QlossKNNPredictor(k=2)
    for name, q in entries.items():
        knn.add_database(name, [(0.0, q), (1e12, q)])
    return knn


class TestDownshiftHysteresis:
    def run_ctl(self, q_pred, q_req, margin):
        cands = [make_selected("fast", 1.0, 0.5), make_selected("slow", 2.0, 0.9, rng=1)]
        knn = fixed_knn({"fast": q_pred, "slow": q_pred})
        ctl = AdaptiveController(
            cands, knn, q_req, 16, downshift_margin=margin
        )
        grid, source = InputProblem(16, 0).materialize()
        FluidSimulator(grid, ctl.initial_solver(), source, controller=ctl).run(16)
        return ctl

    def test_marginal_headroom_does_not_downshift(self):
        # predicted 0.8*q: inside the 3*tolerance margin -> stay accurate
        ctl = self.run_ctl(q_pred=0.08, q_req=0.1, margin=3.0)
        assert ctl.current.name == "slow"
        assert ctl.stats.switches == []

    def test_large_headroom_downshifts(self):
        ctl = self.run_ctl(q_pred=0.001, q_req=0.1, margin=3.0)
        assert any(s.to_model == "fast" for s in ctl.stats.switches)

    def test_zero_margin_downshifts_eagerly(self):
        ctl = self.run_ctl(q_pred=0.08, q_req=0.1, margin=0.0)
        assert any(s.to_model == "fast" for s in ctl.stats.switches)

    def test_start_tie_break_prefers_accurate(self):
        cands = [make_selected("fast", 1.0, 0.9), make_selected("slow", 2.0, 0.9, rng=1)]
        ctl = AdaptiveController(cands, fixed_knn({"fast": 0.1, "slow": 0.1}), 0.1, 16)
        assert ctl.current.name == "slow"
