"""Tests for the BST and the KNN quality predictor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BinarySearchTree, QlossKNNPredictor


class TestBinarySearchTree:
    def test_from_pairs_sorted_items(self):
        tree = BinarySearchTree.from_pairs([(3.0, "c"), (1.0, "a"), (2.0, "b")])
        assert tree.items() == [(1.0, "a"), (2.0, "b"), (3.0, "c")]
        assert len(tree) == 3

    def test_balanced_height(self):
        pairs = [(float(i), i) for i in range(127)]
        tree = BinarySearchTree.from_pairs(pairs)
        assert tree.height() <= 7  # log2(128) = 7

    def test_insert_preserves_order(self):
        tree = BinarySearchTree()
        for k in [5.0, 2.0, 8.0, 1.0, 9.0]:
            tree.insert(k, k)
        assert [k for k, _ in tree.items()] == [1.0, 2.0, 5.0, 8.0, 9.0]

    def test_nearest_exact_hit(self):
        tree = BinarySearchTree.from_pairs([(float(i), i) for i in range(10)])
        out = tree.nearest(5.0, k=1)
        assert out == [(5.0, 5)]

    def test_nearest_k_window(self):
        tree = BinarySearchTree.from_pairs([(float(i), i) for i in range(10)])
        keys = sorted(k for k, _ in tree.nearest(5.2, k=4))
        assert keys == [4.0, 5.0, 6.0, 7.0]

    def test_nearest_at_extremes(self):
        tree = BinarySearchTree.from_pairs([(float(i), i) for i in range(10)])
        assert sorted(k for k, _ in tree.nearest(-100.0, k=3)) == [0.0, 1.0, 2.0]
        assert sorted(k for k, _ in tree.nearest(100.0, k=3)) == [7.0, 8.0, 9.0]

    def test_nearest_k_larger_than_size(self):
        tree = BinarySearchTree.from_pairs([(1.0, "a"), (2.0, "b")])
        assert len(tree.nearest(1.5, k=10)) == 2

    def test_nearest_empty_tree(self):
        assert BinarySearchTree().nearest(1.0, k=3) == []

    def test_nearest_invalid_k(self):
        with pytest.raises(ValueError):
            BinarySearchTree().nearest(0.0, k=0)

    @given(
        keys=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60, unique=True),
        query=st.floats(-1e6, 1e6),
        k=st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_nearest_matches_brute_force(self, keys, query, k):
        tree = BinarySearchTree.from_pairs([(k_, k_) for k_ in keys])
        got = {k_ for k_, _ in tree.nearest(query, k)}
        want_sorted = sorted(keys, key=lambda x: (abs(x - query), x))
        want = set(want_sorted[: min(k, len(keys))])
        # distance ties may legally resolve either way; compare distances
        got_d = sorted(abs(x - query) for x in got)
        want_d = sorted(abs(x - query) for x in want)
        assert got_d == pytest.approx(want_d)

    @given(keys=st.lists(st.floats(-100, 100), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_insert_then_items_sorted(self, keys):
        tree = BinarySearchTree()
        for k_ in keys:
            tree.insert(k_, None)
        items = [k for k, _ in tree.items()]
        assert items == sorted(items)
        assert len(tree) == len(keys)


class TestQlossKNNPredictor:
    def test_predict_mean_of_neighbours(self):
        knn = QlossKNNPredictor(k=4)
        knn.add_database("m", [(101.0, 0.09), (112.0, 0.11), (105.0, 0.10), (109.0, 0.11), (500.0, 0.9)])
        # the paper's own worked example: predict for 108 -> 0.1025
        assert knn.predict("m", 108.0) == pytest.approx(0.1025)

    def test_k_one_returns_nearest_value(self):
        knn = QlossKNNPredictor(k=1)
        knn.add_database("m", [(1.0, 0.1), (10.0, 0.5)])
        assert knn.predict("m", 2.0) == pytest.approx(0.1)

    def test_unknown_model_raises(self):
        knn = QlossKNNPredictor()
        with pytest.raises(KeyError):
            knn.predict("missing", 1.0)

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            QlossKNNPredictor().add_database("m", [])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            QlossKNNPredictor(k=0)

    def test_add_observation_extends(self):
        knn = QlossKNNPredictor(k=2)
        knn.add_observation("m", 1.0, 0.1)
        knn.add_observation("m", 2.0, 0.3)
        assert knn.database_size("m") == 2
        assert knn.predict("m", 1.5) == pytest.approx(0.2)

    def test_models_listing(self):
        knn = QlossKNNPredictor()
        knn.add_database("b", [(1.0, 0.1)])
        knn.add_database("a", [(1.0, 0.1)])
        assert knn.models() == ["a", "b"]

    def test_monotone_database_predicts_monotone(self):
        knn = QlossKNNPredictor(k=2)
        knn.add_database("m", [(float(i), i * 0.01) for i in range(20)])
        assert knn.predict("m", 2.0) < knn.predict("m", 15.0)
