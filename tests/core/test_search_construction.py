"""Tests for the accurate-model search and the construction pipeline."""

import numpy as np
import pytest

from repro.core import (
    ConstructionConfig,
    RBFSurrogate,
    SearchConfig,
    construct_model_family,
    morph,
    search_accurate_models,
)
from repro.data import collect_training_frames, generate_problems
from repro.models import TrainedModel, tompson_arch
from repro.models.arch import MAX_STAGES, ArchSpec, StageSpec


@pytest.fixture(scope="module")
def tiny_data():
    probs = generate_problems(2, 16, split="train")
    return collect_training_frames(probs, n_steps=4)


class TestMorph:
    def test_produces_valid_spec(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            child = morph(tompson_arch(6), rng)
            child.validate()

    def test_changes_something(self):
        rng = np.random.default_rng(1)
        base = tompson_arch(6)
        changed = 0
        for _ in range(10):
            child = morph(base, rng)
            if child.to_dict()["stages"] != base.to_dict()["stages"]:
                changed += 1
        assert changed == 10

    def test_respects_max_stages(self):
        rng = np.random.default_rng(2)
        full = ArchSpec([StageSpec(channels=4) for _ in range(MAX_STAGES)])
        for _ in range(20):
            child = morph(full, rng)
            assert child.n_stages <= MAX_STAGES

    def test_respects_max_channels(self):
        rng = np.random.default_rng(3)
        spec = tompson_arch(30)
        for _ in range(20):
            child = morph(spec, rng, max_channels=32)
            assert all(s.channels <= 32 for s in child.stages)


class TestRBFSurrogate:
    def test_unfitted_returns_infinite_distance(self):
        mean, dist = RBFSurrogate().predict(tompson_arch(4))
        assert dist == float("inf")

    def test_interpolates_observed_point(self):
        s = RBFSurrogate()
        arch = tompson_arch(4)
        s.observe(arch, 0.5)
        mean, dist = s.predict(arch)
        assert mean == pytest.approx(0.5)
        assert dist == pytest.approx(0.0)

    def test_weights_favour_nearby(self):
        s = RBFSurrogate()
        a4, a16 = tompson_arch(4), tompson_arch(16)
        s.observe(a4, 0.1)
        s.observe(a16, 0.9)
        mean5, _ = s.predict(tompson_arch(5))
        mean15, _ = s.predict(tompson_arch(15))
        assert mean5 < mean15


class TestSearch:
    def test_returns_trained_sorted_models(self, tiny_data):
        cfg = SearchConfig(
            iterations=1, proposals_per_iteration=2, evaluations_per_iteration=1,
            train_epochs=2, keep=2,
        )
        out = search_accurate_models(tompson_arch(4), tiny_data, cfg, rng=0)
        assert 1 <= len(out) <= 2
        losses = [m.history.final_loss for m in out]
        assert losses == sorted(losses)
        assert out[0].spec.name == "auto1"

    def test_keeps_at_most_keep(self, tiny_data):
        cfg = SearchConfig(
            iterations=2, proposals_per_iteration=3, evaluations_per_iteration=2,
            train_epochs=1, keep=3,
        )
        out = search_accurate_models(tompson_arch(4), tiny_data, cfg, rng=1)
        assert len(out) <= 3


class TestConstruction:
    def base(self, tiny_data):
        arch = tompson_arch(6)
        arch.name = "tompson"
        net = arch.build(rng=0)
        return TrainedModel(spec=arch, network=net)

    def test_family_counts(self, tiny_data):
        cfg = ConstructionConfig(
            n_shallow=2, narrows_per_model=2, n_dropout=3, fine_tune_epochs=0
        )
        family = construct_model_family(self.base(tiny_data), tiny_data, cfg, rng=0)
        # 2 shallow + 4 narrow = 6; + 6 pooled = 12; + 3 dropout = 15
        assert len(family) == 15

    def test_paper_scale_counts(self, tiny_data):
        cfg = ConstructionConfig(fine_tune_epochs=0)  # paper defaults 5/10/18
        family = construct_model_family(self.base(tiny_data), tiny_data, cfg, rng=0)
        # 5 + 50 = 55; + 55 pooled = 110; + 18 dropout = 128
        assert len(family) == 128

    def test_names_unique(self, tiny_data):
        cfg = ConstructionConfig(n_shallow=3, narrows_per_model=4, n_dropout=5, fine_tune_epochs=0)
        family = construct_model_family(self.base(tiny_data), tiny_data, cfg, rng=0)
        names = [m.name for m in family]
        assert len(set(names)) == len(names)

    def test_all_models_runnable(self, tiny_data):
        cfg = ConstructionConfig(n_shallow=2, narrows_per_model=1, n_dropout=2, fine_tune_epochs=0)
        family = construct_model_family(self.base(tiny_data), tiny_data, cfg, rng=0)
        x = np.random.default_rng(0).standard_normal((1, 2, 16, 16))
        for model in family:
            assert model.network.forward(x).shape == (1, 1, 16, 16)

    def test_fine_tune_records_history(self, tiny_data):
        cfg = ConstructionConfig(n_shallow=1, narrows_per_model=1, n_dropout=0, fine_tune_epochs=2)
        family = construct_model_family(self.base(tiny_data), tiny_data, cfg, rng=0)
        assert all(m.history is not None for m in family)

    def test_family_spans_cost_spectrum(self, tiny_data):
        cfg = ConstructionConfig(n_shallow=2, narrows_per_model=2, n_dropout=2, fine_tune_epochs=0)
        base = self.base(tiny_data)
        family = construct_model_family(base, tiny_data, cfg, rng=0)
        base_flops = base.network.flops((2, 16, 16))
        flops = [m.network.flops((2, 16, 16)) for m in family]
        assert min(flops) < base_flops  # transformations made cheaper models
