"""Tests for the combined report generator."""

from repro.experiments import REPORT_SECTIONS, generate_report


class TestReport:
    def test_sections_reference_real_runners(self):
        import repro.experiments as experiments

        for _, runner, _ in REPORT_SECTIONS:
            assert hasattr(experiments, runner), runner

    def test_selected_sections_render(self, micro_artifacts, tmp_path):
        out = tmp_path / "report.txt"
        text = generate_report(
            micro_artifacts,
            sections=["run_table1", "run_fig3"],
            output=out,
        )
        assert "Table 1" in text
        assert "Pareto front" in text or "family scatter" in text
        assert "Figure 8" not in text  # unselected sections skipped
        assert out.read_text().strip() == text.strip()

    def test_header_carries_scale_and_requirement(self, micro_artifacts):
        text = generate_report(micro_artifacts, sections=["run_table1"])
        assert "scale = micro" in text
        assert "requirement: qloss <=" in text
