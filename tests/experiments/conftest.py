"""Micro-scale artifacts shared by the experiment tests.

Built once per session, never touching the on-disk cache, with every knob at
its minimum so the whole suite stays fast while exercising the same code
paths as the real benchmark scales.
"""

import numpy as np
import pytest

from repro.core import (
    ConstructionConfig,
    OfflineConfig,
    SearchConfig,
    SmartFluidnet,
)
from repro.data import collect_training_frames, generate_problems
from repro.experiments.common import Artifacts, ExperimentScale
from repro.models import ArchSpec, StageSpec, TrainedModel, YangModel, tompson_arch, train_model
from repro.nn import Adam, DivNormLoss, Trainer


@pytest.fixture(scope="session")
def micro_artifacts() -> Artifacts:
    offline = OfflineConfig(
        grid_size=16,
        n_train_problems=2,
        n_calibration_problems=2,
        n_small_problems=3,
        small_grid_size=16,
        train_steps=4,
        eval_steps=10,
        base_epochs=8,
        rollout_rounds=0,
        search=SearchConfig(
            iterations=1, proposals_per_iteration=2, evaluations_per_iteration=1,
            train_epochs=2, keep=2,
        ),
        construction=ConstructionConfig(
            n_shallow=2, narrows_per_model=1, n_dropout=1, fine_tune_epochs=1
        ),
        mlp_epochs=40,
        mlp_samples=32,
    )
    scale = ExperimentScale(
        name="micro",
        grid_sizes=(16,),
        base_grid=16,
        n_problems=2,
        n_steps=10,
        offline=offline,
        yang_epochs=4,
    )
    rng = np.random.default_rng(0)
    framework = SmartFluidnet.build_offline(config=offline, rng=rng)

    probs = generate_problems(2, 16, split="train")
    data = collect_training_frames(probs, n_steps=4)
    tompson = train_model(tompson_arch(4), data, epochs=8, rng=rng)
    tompson.spec.name = "tompson"

    yang_net = YangModel(hidden=(8,), rng=1)
    trainer = Trainer(yang_net, DivNormLoss(), Adam(yang_net.parameters(), lr=3e-3), rng=rng)
    hist = trainer.fit(
        {k: data[k] for k in ("x", "b", "solid", "weights")}, epochs=4, batch_size=8
    )
    yang = TrainedModel(
        spec=ArchSpec([StageSpec(kernel=3, channels=1)], name="yang"),
        network=yang_net,
        history=hist,
    )
    return Artifacts(scale=scale, framework=framework, tompson=tompson, yang=yang, train_data=data)
