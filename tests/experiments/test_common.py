"""Tests for the experiment-scale registry and table formatting."""

import numpy as np
import pytest

from repro.experiments import format_table, get_scale
from repro.experiments.common import _ci_scale, _default_scale, _paper_scale


class TestScales:
    def test_named_scales(self):
        assert get_scale("ci").name == "ci"
        assert get_scale("default").name == "default"
        assert get_scale("paper").name == "paper"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_scale("huge")

    def test_env_variable_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "default")
        assert get_scale().name == "default"

    def test_default_env_is_ci(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale().name == "ci"

    def test_scales_strictly_grow(self):
        ci, default, paper = _ci_scale(), _default_scale(), _paper_scale()
        assert ci.n_problems < default.n_problems < paper.n_problems
        assert ci.n_steps <= default.n_steps <= paper.n_steps
        assert max(ci.grid_sizes) <= max(default.grid_sizes) < max(paper.grid_sizes)

    def test_paper_scale_matches_paper_workload(self):
        paper = _paper_scale()
        assert paper.n_problems == 20480
        assert paper.n_steps == 128
        assert paper.grid_sizes == (128, 256, 512, 768, 1024)
        # construction counts are the paper's 5/10/18 pipeline
        c = paper.offline.construction
        assert (c.n_shallow, c.narrows_per_model, c.n_dropout) == (5, 10, 18)

    def test_ci_scale_uses_scaled_check_cadence(self):
        ci = _ci_scale()
        assert ci.offline.check_interval < 5  # 12-step runs need early checks


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(["A", "Bee"], [["x", 1.0], ["long", 2.5]], title="T")
        lines = text.split("\n")
        assert lines[0] == "T"
        assert lines[1].startswith("A")
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent widths

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000001], [123456.0], [1.5], [0.0]])
        assert "1.000e-06" in text
        assert "1.235e+05" in text
        assert "1.5" in text
        assert "0" in text

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text
