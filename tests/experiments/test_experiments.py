"""Structural tests of every experiment module at micro scale."""

import numpy as np
import pytest

from repro.experiments import (
    run_fig1,
    run_fig3,
    run_fig5,
    run_fig6,
    run_fig8,
    run_fig9_table2,
    run_fig10_11_table3,
    run_fig12,
    run_fig13,
    run_sec4_sensitivity,
    run_table1,
    run_table4,
)


class TestTable1:
    def test_rows_and_ordering(self, micro_artifacts):
        result = run_table1(micro_artifacts)
        methods = [r.method for r in result.rows]
        assert methods == ["pcg", "tompson", "yang"]
        assert result.by_method("pcg").avg_quality_loss is None
        assert result.by_method("pcg").execution_ms > 0
        assert "Table 1" in result.format()

    def test_nn_faster_than_pcg(self, micro_artifacts):
        result = run_table1(micro_artifacts)
        assert result.by_method("tompson").execution_ms < result.by_method("pcg").execution_ms


class TestFig1:
    def test_histogram_properties(self, micro_artifacts):
        result = run_fig1(micro_artifacts, n_bins=5)
        assert result.proportions.shape == (5,)
        assert result.proportions.sum() == pytest.approx(1.0)
        assert len(result.bin_edges) == 6
        assert result.violation_rate(0.0) == 1.0
        assert result.violation_rate(np.inf) == 0.0


class TestFig3:
    def test_points_cover_records(self, micro_artifacts):
        result = run_fig3(micro_artifacts)
        record_names = {r.model_name for r in micro_artifacts.framework.records}
        assert {p.model for p in result.points} == record_names
        assert 1 <= result.n_selected <= result.n_models


class TestFig5:
    def test_curve_lengths(self, micro_artifacts):
        result = run_fig5(micro_artifacts, epochs=10, topologies=("mlp1", "mlp3"))
        assert set(result.curves) == {"mlp1", "mlp3"}
        assert all(len(c) == 10 for c in result.curves.values())
        assert result.param_counts["mlp3"] > result.param_counts["mlp1"]

    def test_unknown_topology(self, micro_artifacts):
        with pytest.raises(ValueError):
            run_fig5(micro_artifacts, epochs=1, topologies=("mlp17",))


class TestFig6:
    def test_series_shapes(self, micro_artifacts):
        result = run_fig6(micro_artifacts, n_problems=1)
        n = micro_artifacts.scale.n_steps
        assert result.divnorm.shape == (n,)
        assert result.cumdivnorm.shape == (n,)
        assert result.qloss_ts.shape == (n,)
        assert (np.diff(result.cumdivnorm) >= -1e-12).all()
        assert -1.0 <= result.pearson <= 1.0
        assert -1.0 <= result.spearman <= 1.0


class TestFig8:
    def test_rows_per_grid(self, micro_artifacts):
        result = run_fig8(micro_artifacts)
        assert [r.grid_size for r in result.rows] == list(micro_artifacts.scale.grid_sizes)
        for r in result.rows:
            assert r.pcg_seconds > 0
            assert r.tompson_speedup > 0
            assert r.smart_speedup > 0
        assert result.mean_smart_over_tompson > 0


class TestFig9Table2:
    def test_stats_and_rates(self, micro_artifacts):
        result = run_fig9_table2(micro_artifacts)
        for row in result.rows:
            assert row.tompson.lo <= row.tompson.median <= row.tompson.hi
            assert row.smart.q1 <= row.smart.median <= row.smart.q3
            assert 0.0 <= row.tompson_success <= 1.0
            assert 0.0 <= row.smart_success <= 1.0
        assert result.requirement_q == micro_artifacts.requirement.q


class TestFig10_11Table3:
    def test_candidates_and_shares(self, micro_artifacts):
        fig, table3 = run_fig10_11_table3(micro_artifacts)
        assert len(fig.candidates) == len(micro_artifacts.framework.candidates)
        assert fig.smart.model == "smart-fluidnet"
        if table3.time_share:
            assert sum(table3.time_share.values()) == pytest.approx(1.0)
        runtime = {s.name for s in micro_artifacts.framework.runtime_models}
        assert set(table3.probabilities) == runtime


class TestFig12:
    def test_rows(self, micro_artifacts):
        result = run_fig12(micro_artifacts)
        assert len(result.rows) == len(micro_artifacts.scale.grid_sizes)
        for r in result.rows:
            assert 0.0 <= r.success_with_mlp <= 1.0
            assert 0.0 <= r.success_without_mlp <= 1.0
            assert r.perf_with_over_without > 0


class TestFig13:
    def test_intervals_filtered_to_run_length(self, micro_artifacts):
        result = run_fig13(micro_artifacts)
        assert all(i <= micro_artifacts.scale.n_steps for i in result.intervals)
        assert len(result.success_rates) == len(result.intervals)
        assert result.best_interval() in result.intervals

    def test_explicit_intervals(self, micro_artifacts):
        result = run_fig13(micro_artifacts, intervals=(3, 4))
        assert result.intervals == [3, 4]


class TestTable4:
    def test_rows_present(self, micro_artifacts):
        result = run_table4(micro_artifacts)
        assert {r.method for r in result.rows} == {"pcg", "tompson", "smart-fluidnet"}
        for r in result.rows:
            assert r.mflop_single_step > 0
            assert r.memory_mb > 0
        smart = result.by_method("smart-fluidnet")
        tomp = result.by_method("tompson")
        assert smart.memory_mb >= tomp.memory_mb  # several models resident


class TestSec4Sensitivity:
    def test_sweeps_populated(self, micro_artifacts):
        result = run_sec4_sensitivity(micro_artifacts)
        assert set(result.prune_depth) == {1, 2}
        assert set(result.pool_stages) == {1, 2, 3}
        assert set(result.dropout_rate) == {0.05, 0.10, 0.15}
        assert all(v > 0 for v in result.prune_depth.values())
        counts = [result.n_dropout_models[k] for k in sorted(result.n_dropout_models)]
        assert counts == sorted(counts)
