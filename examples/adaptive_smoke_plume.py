"""Smart-fluidnet end to end: offline phase, then adaptive online runs.

Builds the full offline pipeline (input-model training, Auto-Keras-style
search, the four transformation operations, Pareto + MLP + Eq. 8 selection,
KNN databases) at a small scale, then simulates unseen smoke plumes with the
quality-aware model-switch runtime and prints what the scheduler did.

Run:  python examples/adaptive_smoke_plume.py
"""

import numpy as np

from repro.core import (
    ConstructionConfig,
    OfflineConfig,
    SearchConfig,
    SmartFluidnet,
    quality_loss,
)
from repro.core.records import ReferenceCache
from repro.data import generate_problems


def main() -> None:
    cfg = OfflineConfig(
        grid_size=24,
        n_train_problems=4,
        n_calibration_problems=3,
        n_small_problems=5,
        small_grid_size=16,
        train_steps=6,
        eval_steps=16,
        base_epochs=20,
        rollout_rounds=1,
        search=SearchConfig(iterations=1, proposals_per_iteration=3,
                            evaluations_per_iteration=1, train_epochs=4, keep=2),
        construction=ConstructionConfig(n_shallow=3, narrows_per_model=2,
                                        n_dropout=3, fine_tune_epochs=2),
        mlp_epochs=100,
    )
    print("running the offline phase (this trains a small model family) ...")
    smart = SmartFluidnet.build_offline(config=cfg, rng=0, verbose=True)

    print(f"\nuser requirement: qloss <= {smart.requirement.q:.4f}, "
          f"time <= {smart.requirement.t:.3f}s")
    print("runtime models (MLP probability, mean solver seconds):")
    for sel in smart.runtime_models:
        print(f"  {sel.name:45s} p={sel.success_prob:.2f} t={sel.model_seconds:.4f}s")

    problems = generate_problems(3, cfg.grid_size, split="eval")
    reference = ReferenceCache(cfg.eval_steps, cfg.simulation)
    print("\nonline phase:")
    for problem in problems:
        run = smart.run(problem)
        ref = reference.reference(problem)
        q = quality_loss(ref.density, run.result.density)
        status = "RESTARTED with PCG" if run.restarted else "ok"
        print(f"\nproblem seed={problem.seed}: qloss={q:.4f} ({status})")
        print(f"  steps per model: {run.stats.steps_per_model}")
        for sw in run.stats.switches:
            print(f"  step {sw.step:3d}: {sw.from_model} -> {sw.to_model} "
                  f"(predicted qloss {sw.predicted_qloss:.4f})")
        if not run.stats.switches:
            print("  no switches: the starting model was predicted to satisfy U(q, t)")


if __name__ == "__main__":
    main()
