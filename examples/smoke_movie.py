"""Render a smoke plume time lapse: ASCII animation + PGM image strip.

Runs one input problem twice — exact PCG and a trained network — and writes
side-by-side frame strips to ``smoke_pcg.pgm`` / ``smoke_nn.pgm`` so the
visual difference behind the quality-loss numbers can actually be seen.

Run:  python examples/smoke_movie.py
"""

import numpy as np

from repro import viz
from repro.data import InputProblem, collect_training_frames, generate_problems
from repro.fluid import FluidSimulator, PCGSolver
from repro.models import tompson_arch, train_model

GRID = 48
STEPS = 24
SNAP_EVERY = 4


def capture(solver, problem):
    grid, source = problem.materialize()
    sim = FluidSimulator(grid, solver, source)
    frames = []
    for step in range(STEPS):
        sim.step()
        if (step + 1) % SNAP_EVERY == 0:
            frames.append(grid.density.copy())
    return frames


def main() -> None:
    print("training a small approximation network ...")
    train_problems = generate_problems(4, GRID, split="train")
    data = collect_training_frames(train_problems, n_steps=6)
    model = train_model(tompson_arch(), data, epochs=25, rng=0,
                        rollout_problems=train_problems, rollout_rounds=1)

    problem = InputProblem(GRID, seed=777)
    print("simulating with PCG and with the network ...")
    pcg_frames = capture(PCGSolver(), problem)
    nn_frames = capture(model.solver(passes=2), problem)

    vmax = max(f.max() for f in pcg_frames + nn_frames)
    p1 = viz.save_pgm(viz.frame_strip(pcg_frames, vmax=vmax), "smoke_pcg.pgm", vmax=vmax)
    p2 = viz.save_pgm(viz.frame_strip(nn_frames, vmax=vmax), "smoke_nn.pgm", vmax=vmax)
    print(f"wrote {p1} and {p2}")

    print("\nfinal frame, exact PCG:")
    print(viz.to_ascii(pcg_frames[-1], width=GRID, vmax=vmax))
    print("\nfinal frame, neural network:")
    print(viz.to_ascii(nn_frames[-1], width=GRID, vmax=vmax))
    err = np.abs(pcg_frames[-1] - nn_frames[-1]).mean() / max(pcg_frames[-1].mean(), 1e-12)
    print(f"\nquality loss (Eq. 3): {err:.4f}")


if __name__ == "__main__":
    main()
