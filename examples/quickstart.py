"""Quickstart: accelerate a smoke-plume simulation with a neural network.

Trains a small Tompson-style CNN on frames harvested from exact (PCG)
simulations, then runs the same randomly-generated input problem twice —
once with the exact solver, once with the network — and compares quality
loss and solver time.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro.core import quality_loss
from repro.data import InputProblem, collect_training_frames, generate_problems
from repro.fluid import FluidSimulator, PCGSolver
from repro.models import tompson_arch, train_model

GRID = 32
STEPS = 16


def main() -> None:
    # 1. harvest training frames from exact simulations
    print("collecting training frames from PCG simulations ...")
    train_problems = generate_problems(6, GRID, split="train")
    data = collect_training_frames(train_problems, n_steps=8)
    print(f"  {len(data['x'])} frames of shape {data['x'].shape[1:]}")

    # 2. train the approximation network (unsupervised DivNorm objective)
    print("training a 5-stage Tompson-style CNN ...")
    model = train_model(
        tompson_arch(channels=8),
        data,
        epochs=30,
        rng=0,
        rollout_problems=train_problems,
        rollout_rounds=2,
    )
    print(f"  final training loss: {model.history.final_loss:.4f}")

    # 3. run one unseen problem with both solvers
    problem = InputProblem(GRID, seed=2_424_242)
    grid_ref, src_ref = problem.materialize()
    t0 = time.perf_counter()
    reference = FluidSimulator(grid_ref, PCGSolver(), src_ref).run(STEPS)
    t_ref = time.perf_counter() - t0

    grid_nn, src_nn = problem.materialize()
    t0 = time.perf_counter()
    approx = FluidSimulator(grid_nn, model.solver(passes=2), src_nn).run(STEPS)
    t_nn = time.perf_counter() - t0

    q = quality_loss(reference.density, approx.density)
    print(f"\nexact PCG:   total {t_ref:.2f}s  (solver {reference.solve_seconds:.2f}s)")
    print(f"neural net:  total {t_nn:.2f}s  (solver {approx.solve_seconds:.2f}s)")
    print(f"solver speedup: {reference.solve_seconds / max(approx.solve_seconds, 1e-12):.1f}x")
    print(f"quality loss (Eq. 3 vs PCG): {q:.4f}")


if __name__ == "__main__":
    main()
