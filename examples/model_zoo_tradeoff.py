"""Explore the quality/time trade-off of a transformed model family.

Reproduces the Section 4 construction at miniature scale: starting from a
trained Tompson-style model, applies shallow / narrow / pooling / dropout to
build a family, measures every member's solver time and quality loss on
calibration problems, and prints the family with its Pareto front — the data
behind the paper's Figure 3.

Run:  python examples/model_zoo_tradeoff.py
"""

import numpy as np

from repro.core import (
    ConstructionConfig,
    ReferenceCache,
    collect_execution_records,
    construct_model_family,
    pareto_select,
)
from repro.data import collect_training_frames, generate_problems
from repro.models import tompson_arch, train_model

GRID = 24


def main() -> None:
    print("training the base model ...")
    train_problems = generate_problems(4, GRID, split="train")
    data = collect_training_frames(train_problems, n_steps=6)
    base = train_model(tompson_arch(channels=8), data, epochs=20, rng=0)
    base.spec.name = "tompson"

    print("constructing the transformed family ...")
    cfg = ConstructionConfig(
        n_shallow=3, narrows_per_model=2, n_dropout=4, fine_tune_epochs=2
    )
    family = construct_model_family(base, data, cfg, rng=0)
    models = [base] + family
    print(f"  {len(family)} transformed models "
          f"(paper scale would be 128: 5 shallow -> 55 narrow -> 110 pooled -> 128)")

    print("measuring execution records on calibration problems ...")
    calib = generate_problems(3, GRID, split="eval")
    reference = ReferenceCache(n_steps=12)
    records = collect_execution_records(models, calib, reference, passes=2)

    stats = {}
    for r in records:
        stats.setdefault(r.model_name, []).append(r)
    rows = [
        (
            name,
            float(np.mean([r.execution_seconds for r in recs])),
            float(np.mean([r.quality_loss for r in recs])),
        )
        for name, recs in stats.items()
    ]
    selected = {
        m.name
        for m in pareto_select(models, [row[1] for row in rows], [row[2] for row in rows])
    }

    print(f"\n{'model':48s} {'time(s)':>9s} {'qloss':>8s}  pareto")
    for name, secs, q in sorted(rows, key=lambda r: r[1]):
        mark = "  *" if name in selected else ""
        print(f"{name:48s} {secs:9.4f} {q:8.4f}{mark}")
    print(f"\n{len(selected)} model candidates on the Pareto front "
          "(the paper keeps 14 of 133)")


if __name__ == "__main__":
    main()
