"""Compare the pressure solvers of the fluid substrate head to head.

Solves the same pressure-Poisson problem (from a randomly-initialised smoke
plume) with every solver in the package — MICCG(0), plain CG, Jacobi-
preconditioned CG, weighted Jacobi and geometric multigrid — and reports
iterations, residuals and timing.  This is the computation the paper's
networks approximate (70-80% of total simulation time).

Run:  python examples/solver_showdown.py
"""

import time

import numpy as np

from repro.fluid import (
    MultigridSolver,
    PCGSolver,
    apply_laplacian,
    divergence,
    jacobi_solve,
    make_smoke_plume,
    poisson_rhs,
)

GRID = 66  # 2^k + 2 grids give multigrid its full hierarchy


def main() -> None:
    grid, source = make_smoke_plume(GRID, GRID, rng=7)
    source.apply(grid, dt=0.1)
    div = divergence(grid)
    b = poisson_rhs(div, grid.solid, dt=0.05, rho=1.0, dx=grid.dx)
    fluid = grid.fluid
    print(f"{GRID}x{GRID} plume problem, {int(fluid.sum())} fluid cells, "
          f"|b|_inf = {np.abs(b[fluid]).max():.3g}\n")

    solvers = [
        ("MICCG(0)", lambda: PCGSolver(tol=1e-6).solve(b, grid.solid)),
        ("CG (no precond)", lambda: PCGSolver(tol=1e-6, preconditioner="none").solve(b, grid.solid)),
        ("CG (Jacobi precond)", lambda: PCGSolver(tol=1e-6, preconditioner="jacobi").solve(b, grid.solid)),
        ("Multigrid V-cycles", lambda: MultigridSolver(tol=1e-6).solve(b, grid.solid)),
        ("Jacobi x300", lambda: jacobi_solve(b, grid.solid, iterations=300)),
    ]

    print(f"{'solver':22s} {'iters':>6s} {'residual':>10s} {'time':>8s}  converged")
    for name, run in solvers:
        t0 = time.perf_counter()
        res = run()
        dt = time.perf_counter() - t0
        r = np.abs((b - apply_laplacian(res.pressure, grid.solid))[fluid]).max()
        print(f"{name:22s} {res.iterations:6d} {r:10.2e} {dt:7.3f}s  {res.converged}")


if __name__ == "__main__":
    main()
