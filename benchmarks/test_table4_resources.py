"""Table 4: FLOP per step and memory of PCG / Tompson / Smart-fluidnet.

Paper shape: Smart needs fewer FLOPs than Tompson (110.97M vs 243.79M; PCG
~1,250M) — that is where its speed comes from — but more memory (1,069MB vs
299MB), because all runtime models stay resident on the GPU.
"""

from repro.experiments import run_table4


def test_table4_resources(benchmark, artifacts, report):
    result = benchmark.pedantic(run_table4, args=(artifacts,), rounds=1, iterations=1)
    report(
        "table4",
        result.format()
        + "\n(paper @512x512: PCG ~1250M / 332MB, Tompson 243.79M / 299MB, "
        "Smart 110.97M / 1069MB)",
    )

    pcg = result.by_method("pcg")
    tompson = result.by_method("tompson")
    smart = result.by_method("smart-fluidnet")
    # Smart computes less than the fixed model...
    assert smart.mflop_single_step < tompson.mflop_single_step
    # ...but holds several models resident, so it uses the most memory
    assert smart.memory_mb > tompson.memory_mb
    assert smart.memory_mb > pcg.memory_mb
    assert pcg.mflop_single_step > 0
