"""Figure 9: quality-loss distributions per grid size (boxplots).

Paper shape: Smart-fluidnet's outputs sit closer to the target and vary
less than Tompson's across all grid sizes.
"""

import numpy as np

from repro.experiments import run_fig9_table2


def test_fig9_quality_by_grid(benchmark, artifacts, report):
    result = benchmark.pedantic(run_fig9_table2, args=(artifacts,), rounds=1, iterations=1)
    report("fig9_table2", result.format())

    assert len(result.rows) == len(artifacts.scale.grid_sizes)
    for row in result.rows:
        assert row.tompson.hi >= row.tompson.lo >= 0
        assert row.smart.hi >= row.smart.lo >= 0
    # paper observation 2: Smart's spread is smaller than Tompson's on
    # average across grid sizes
    t_iqr = np.mean([r.tompson.iqr for r in result.rows])
    s_iqr = np.mean([r.smart.iqr for r in result.rows])
    assert s_iqr <= 1.5 * t_iqr
