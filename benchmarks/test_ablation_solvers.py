"""Ablation: exact-solver design choices of the substrate.

* MIC(0) preconditioning vs Jacobi vs none — iteration counts on the same
  systems (DESIGN.md: MIC(0) is the paper's MICCG(0) solver).
* Interior-aligned multigrid depth — convergence across hierarchy depths
  (DESIGN.md caps the depth at 3).
"""

import numpy as np

from repro.experiments import format_table
from repro.fluid import MACGrid2D, MultigridSolver, PCGSolver, make_smoke_plume


def _rhs(solid, seed):
    rng = np.random.default_rng(seed)
    fluid = ~solid
    b = np.where(fluid, rng.standard_normal(solid.shape), 0.0)
    return np.where(fluid, b - b[fluid].mean(), 0.0)


def run_preconditioner_sweep():
    rows = []
    for precond in ("mic0", "jacobi", "none"):
        iters = []
        for seed in range(4):
            grid, _ = make_smoke_plume(34, 34, rng=seed)
            res = PCGSolver(tol=1e-7, preconditioner=precond).solve(_rhs(grid.solid, seed), grid.solid)
            assert res.converged
            iters.append(res.iterations)
        rows.append((precond, float(np.mean(iters))))
    return rows


def run_multigrid_depth_sweep():
    rows = []
    grid = MACGrid2D(34, 34)
    b = _rhs(grid.solid, 0)
    for depth in (1, 2, 3):
        res = MultigridSolver(tol=1e-7, max_cycles=400, max_levels=depth).solve(b, grid.solid)
        rows.append((depth, res.iterations, res.converged))
    return rows


def test_ablation_preconditioner(benchmark, report):
    rows = benchmark.pedantic(run_preconditioner_sweep, rounds=1, iterations=1)
    report(
        "ablation_preconditioner",
        format_table(
            ["Preconditioner", "Mean CG iterations"],
            [list(r) for r in rows],
            title="Ablation: PCG preconditioning (tol 1e-7, 34x34 plumes)",
        ),
    )
    by = dict(rows)
    assert by["mic0"] < by["jacobi"] <= by["none"] * 1.05


def test_ablation_multigrid_depth(benchmark, report):
    rows = benchmark.pedantic(run_multigrid_depth_sweep, rounds=1, iterations=1)
    report(
        "ablation_multigrid_depth",
        format_table(
            ["Levels", "V-cycles", "Converged"],
            [list(r) for r in rows],
            title="Ablation: multigrid hierarchy depth (34x34, clean domain)",
        ),
    )
    cycles = {r[0]: r[1] for r in rows}
    assert all(r[2] for r in rows)  # every depth converges on clean walls
    assert cycles[3] < cycles[1]  # deeper hierarchy = fewer cycles
