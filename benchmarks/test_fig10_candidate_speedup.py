"""Figure 10: speedup of each model candidate alone vs Smart-fluidnet.

Paper shape: candidate speedups span a wide range (141x-541x); the adaptive
runtime lands near the candidates' median (440x) — the cost of adapting.
"""

import numpy as np

from repro.experiments import run_fig10_11_table3


def test_fig10_candidate_speedup(benchmark, artifacts, report):
    fig, _ = benchmark.pedantic(run_fig10_11_table3, args=(artifacts,), rounds=1, iterations=1)
    report(
        "fig10_11",
        fig.format() + "\n(paper: candidates 141x-541x, Smart 440x ~ median)",
    )

    speeds = [c.speedup for c in fig.candidates]
    assert all(s > 0 for s in speeds)
    # Smart sits within (or near) the candidates' speed envelope
    assert fig.smart.speedup >= 0.5 * min(speeds)
    assert fig.smart.speedup <= 2.0 * max(speeds)
