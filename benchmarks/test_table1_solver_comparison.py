"""Table 1: execution time and quality loss of PCG / Tompson / Yang.

Paper shape: PCG slowest by orders of magnitude (exact); Yang ~2.2x faster
than Tompson but ~3.8x less accurate.
"""

from repro.experiments import PAPER_TABLE1, run_table1


def test_table1_solver_comparison(benchmark, artifacts, report):
    result = benchmark.pedantic(run_table1, args=(artifacts,), rounds=1, iterations=1)
    lines = [result.format(), "", "paper reference (ms, qloss):"]
    for k, (ms, q) in PAPER_TABLE1.items():
        lines.append(f"  {k:8s} {ms:.3g}  {q if q is not None else '--'}")
    report("table1", "\n".join(lines))

    pcg = result.by_method("pcg")
    tompson = result.by_method("tompson")
    yang = result.by_method("yang")
    # who wins, and in which order — the shape the paper reports
    assert pcg.execution_ms > tompson.execution_ms > yang.execution_ms
    assert yang.avg_quality_loss > tompson.avg_quality_loss > 0
