"""Figure 8: speedup over PCG by grid size, Tompson vs Smart-fluidnet.

Paper shape: both methods deliver large speedups at every grid size, and
Smart-fluidnet beats Tompson's model in all cases (1.46x on average, up to
2.25x).
"""

from repro.experiments import run_fig8


def test_fig8_speedup_by_grid(benchmark, artifacts, report):
    result = benchmark.pedantic(run_fig8, args=(artifacts,), rounds=1, iterations=1)
    report(
        "fig8",
        result.format() + "\n(paper: Smart/Tompson = 1.46x mean, 2.25x max; 590x over PCG)",
    )

    for row in result.rows:
        assert row.tompson_speedup > 1.0, f"grid {row.grid_size}: NN slower than PCG"
        assert row.smart_speedup > 1.0
    # the headline claim, with CPU-scale tolerance: Smart at least matches
    # Tompson's speed on average
    assert result.mean_smart_over_tompson > 0.9
