"""Section 4 sensitivity studies of the construction parameters.

Paper shape: pruning two layers hurts badly (20% loss); pooling more stages
degrades quality (10% neurons ok, 20-30% not); dropout 15% is worse than
5-10%; the dropout-model count controls the family (and candidate) size.
"""

from repro.experiments import run_sec4_sensitivity


def test_sec4_sensitivity(benchmark, artifacts, report):
    result = benchmark.pedantic(run_sec4_sensitivity, args=(artifacts,), rounds=1, iterations=1)
    report("sec4_sensitivity", result.format())

    # (1) deeper pruning cannot beat shallow pruning
    assert result.prune_depth[2] >= 0.8 * result.prune_depth[1]
    # (2) pooling three stages cannot beat pooling one
    assert result.pool_stages[3] >= 0.8 * result.pool_stages[1]
    # (3) all dropout rates produce finite quality
    assert all(v >= 0 for v in result.dropout_rate.values())
    # (4) family size grows monotonically with the dropout-model count
    counts = [result.n_dropout_models[k] for k in sorted(result.n_dropout_models)]
    assert counts == sorted(counts)
    assert counts[-1] > counts[0]
