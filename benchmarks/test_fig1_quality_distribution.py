"""Figure 1: the spread of Tompson's quality loss across input problems.

Paper shape: a broad distribution — with the requirement set at a typical
value, a substantial fraction of inputs violate it (65.42% at q = 0.01 in
the paper), motivating multiple models.
"""

import numpy as np

from repro.experiments import run_fig1


def test_fig1_quality_distribution(benchmark, artifacts, report):
    result = benchmark.pedantic(run_fig1, args=(artifacts,), rounds=1, iterations=1)
    mean_q = float(result.losses.mean())
    lines = [
        result.format(),
        "",
        f"violation rate at q = mean ({mean_q:.4f}): "
        f"{100 * result.violation_rate(mean_q):.1f}% (paper: 65.42% at q=0.01)",
    ]
    report("fig1", "\n".join(lines))

    assert (result.proportions >= 0).all()
    assert result.proportions.sum() == 1.0
    # a fixed model's quality varies across inputs — the figure's whole point
    assert result.losses.std() > 0
    assert 0.0 < result.violation_rate(mean_q) < 1.0
