"""Table 3: solver-time share of the runtime models during adaptive runs.

Paper shape: the model with the highest MLP probability dominates the
execution time (50.56%), with the rest sharing the remainder — evidence the
runtime pursues the requirement rather than a single fixed model.
"""

from repro.experiments import run_fig10_11_table3


def test_table3_time_distribution(benchmark, artifacts, report):
    _, table3 = benchmark.pedantic(run_fig10_11_table3, args=(artifacts,), rounds=1, iterations=1)
    report("table3", table3.format() + "\n(paper: top model 50.56% of solver time)")

    assert table3.time_share, "adaptive runs recorded no solver time"
    total = sum(table3.time_share.values())
    assert abs(total - 1.0) < 1e-9
    # every model that ran is one of the MLP-selected runtime models
    runtime_names = {s.name for s in artifacts.framework.runtime_models}
    assert set(table3.time_share) <= runtime_names
