"""Ablation: self-rollout training augmentation.

DESIGN.md claims rollout augmentation closes the train/inference
distribution gap (FluidNet's long-term-stability training).  This bench
trains the same architecture with and without rollout rounds and compares
quality over evaluation problems.
"""

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems
from repro.experiments import evaluate_solver, format_table
from repro.models import tompson_arch, train_model


def run_ablation(artifacts):
    scale = artifacts.scale
    data = artifacts.train_data
    train_problems = generate_problems(
        scale.offline.n_train_problems, scale.offline.grid_size, split="train"
    )
    eval_problems = generate_problems(scale.n_problems, scale.base_grid, split="eval")
    reference = ReferenceCache(scale.n_steps)

    epochs = scale.offline.base_epochs
    plain = train_model(tompson_arch(), data, epochs=epochs, rng=3)
    rollout = train_model(
        tompson_arch(), data, epochs=epochs, rng=3,
        rollout_problems=train_problems, rollout_rounds=2,
    )
    out = {}
    for name, model in (("no-rollout", plain), ("rollout", rollout)):
        stats = evaluate_solver(lambda m=model: m.solver(passes=2), eval_problems, reference)
        out[name] = (
            float(np.mean([s.quality_loss for s in stats])),
            float(np.mean([s.cumdivnorm_final for s in stats])),
        )
    return out


def test_ablation_rollout(benchmark, artifacts, report):
    out = benchmark.pedantic(run_ablation, args=(artifacts,), rounds=1, iterations=1)
    report(
        "ablation_rollout",
        format_table(
            ["Training", "Mean Qloss", "Mean CumDivNorm"],
            [[k, v[0], v[1]] for k, v in out.items()],
            title="Ablation: self-rollout augmentation",
        ),
    )
    # rollout training controls long-horizon divergence drift
    assert out["rollout"][1] < out["no-rollout"][1] * 1.5
    assert out["rollout"][0] < out["no-rollout"][0] * 1.5
