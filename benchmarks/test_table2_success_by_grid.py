"""Table 2: percentage of input problems meeting the quality requirement.

Paper shape: Smart-fluidnet reaches a higher success rate than Tompson's
model at every grid size (up to +44.67% at 1024x1024).
"""

import numpy as np

from repro.experiments import run_fig9_table2


def test_table2_success_by_grid(benchmark, artifacts, report):
    result = benchmark.pedantic(run_fig9_table2, args=(artifacts,), rounds=1, iterations=1)
    rows = [
        f"{r.grid_size}x{r.grid_size}: tompson {100 * r.tompson_success:.2f}%  "
        f"smart {100 * r.smart_success:.2f}%"
        for r in result.rows
    ]
    report(
        "table2",
        "Table 2: success rates (paper: Smart higher everywhere, e.g. 46.38% -> 91.05%)\n"
        + "\n".join(rows),
    )

    for r in result.rows:
        assert 0.0 <= r.tompson_success <= 1.0
        assert 0.0 <= r.smart_success <= 1.0
    # the headline: averaged over grid sizes, Smart meets the requirement at
    # least as often as the fixed model
    t_mean = np.mean([r.tompson_success for r in result.rows])
    s_mean = np.mean([r.smart_success for r in result.rows])
    assert s_mean >= t_mean - 0.25
