"""Ablation: defect-correction passes of the NN pressure solver.

DESIGN.md substitutes the paper's GPU-scale one-shot CNN with a CPU-scale
CNN plus 1-3 refinement passes.  This bench sweeps the pass count and shows
the knob trades solver time for residual/quality exactly as claimed — and
that even the deepest setting stays well below PCG's cost.
"""

import numpy as np

from repro.core import ReferenceCache
from repro.data import generate_problems
from repro.experiments import evaluate_solver, format_table


def run_sweep(artifacts):
    scale = artifacts.scale
    problems = generate_problems(scale.n_problems, scale.base_grid, split="eval")
    reference = ReferenceCache(scale.n_steps)
    pcg_secs = float(np.mean([reference.reference(p).solve_seconds for p in problems]))
    rows = []
    for passes in (1, 2, 3, 4):
        stats = evaluate_solver(
            lambda p=passes: artifacts.tompson.solver(passes=p), problems, reference
        )
        rows.append(
            (
                passes,
                float(np.mean([s.quality_loss for s in stats])),
                float(np.mean([s.solve_seconds for s in stats])),
                float(np.mean([s.cumdivnorm_final for s in stats])),
            )
        )
    return rows, pcg_secs


def test_ablation_passes(benchmark, artifacts, report):
    rows, pcg_secs = benchmark.pedantic(run_sweep, args=(artifacts,), rounds=1, iterations=1)
    report(
        "ablation_passes",
        format_table(
            ["Passes", "Mean Qloss", "Solver (s)", "CumDivNorm"],
            [list(r) for r in rows],
            title=f"Ablation: defect-correction passes (PCG = {pcg_secs:.3f}s)",
        ),
    )

    times = [r[2] for r in rows]
    cdn = [r[3] for r in rows]
    # time grows with passes; accumulated divergence shrinks
    assert times == sorted(times)
    assert cdn[-1] < cdn[0]
    # even 4 passes stay cheaper than the exact solver
    assert times[-1] < pcg_secs
