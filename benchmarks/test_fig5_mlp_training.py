"""Figure 5: training-loss curves of the MLP1-MLP5 topologies.

Paper shape: all five converge; MLP3 offers the best accuracy/size balance,
with the deeper MLP4/MLP5 showing no significant advantage.
"""

from repro.experiments import run_fig5


def test_fig5_mlp_training(benchmark, artifacts, report):
    result = benchmark.pedantic(
        run_fig5, args=(artifacts,), kwargs={"epochs": 80}, rounds=1, iterations=1
    )
    report("fig5", result.format())

    assert set(result.curves) == {"mlp1", "mlp2", "mlp3", "mlp4", "mlp5"}
    for name, curve in result.curves.items():
        assert len(curve) == 80
        assert curve[-1] < curve[0], f"{name} did not converge"
    # deeper variants have more parameters, as drawn in the paper
    params = [result.param_counts[f"mlp{i}"] for i in range(1, 6)]
    assert params == sorted(params)
    # the deepest model should not be dramatically better than MLP3
    assert result.final["mlp5"] > 0.5 * result.final["mlp3"]
