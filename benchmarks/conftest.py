"""Shared fixtures of the benchmark suite.

The offline phase (model family, MLP, KNN databases) is built once per
session — or loaded from ``.cache/`` — so each benchmark times only its own
experiment.  Set ``REPRO_SCALE=default`` (or ``paper``) for larger runs.
"""

from pathlib import Path

import pytest

from repro.experiments import build_artifacts, get_scale

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def artifacts():
    """Session-wide offline artifacts at the configured scale."""
    return build_artifacts(get_scale())


@pytest.fixture()
def report(capsys):
    """Print a result table to the real terminal and archive it."""

    def emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return emit
