"""Figure 13: sensitivity of the success rate to the check interval.

Paper shape: success decays as the interval grows (model switching reacts
too slowly); 5 is the best setting.
"""

import numpy as np

from repro.experiments import run_fig13


def test_fig13_check_interval(benchmark, artifacts, report):
    result = benchmark.pedantic(run_fig13, args=(artifacts,), rounds=1, iterations=1)
    report("fig13", result.format() + "\n(paper: best at 5, decaying towards 20)")

    assert len(result.intervals) >= 1
    assert all(0.0 <= s <= 1.0 for s in result.success_rates)
    # the shortest interval reacts fastest: it should be at least as good as
    # the longest one (paper: strictly better)
    assert result.success_rates[0] >= result.success_rates[-1] - 0.25
