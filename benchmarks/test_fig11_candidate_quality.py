"""Figure 11: quality-loss variation of candidates alone vs Smart-fluidnet.

Paper shape: Smart's variation is much smaller than any fixed candidate's;
its success rate (91.05%) approaches the most accurate model's (92.71%)
while the fastest model manages only 12.52%.
"""

import numpy as np

from repro.experiments import run_fig10_11_table3


def test_fig11_candidate_quality(benchmark, artifacts, report):
    fig, _ = benchmark.pedantic(run_fig10_11_table3, args=(artifacts,), rounds=1, iterations=1)
    success = [f"{c.model}: {100 * c.success:.1f}%" for c in fig.candidates]
    report(
        "fig11",
        "Figure 11 success rates: " + ", ".join(success) + f"; smart {100 * fig.smart.success:.1f}%",
    )

    iqrs = [c.qloss.iqr for c in fig.candidates]
    # Smart's spread is not worse than the candidates' typical spread
    assert fig.smart.qloss.iqr <= 1.5 * float(np.median(iqrs)) + 1e-9
    # Smart's success approaches the best fixed candidate's
    best = max(c.success for c in fig.candidates)
    assert fig.smart.success >= best - 0.35
