"""Figure 6: DivNorm / CumDivNorm / Qloss^ts over the simulation.

Paper shape: DivNorm stabilises after the first steps; CumDivNorm and the
running quality loss grow with the same trend, correlating strongly
(rp = 0.61, rs = 0.79).
"""

import numpy as np

from repro.experiments import run_fig6


def test_fig6_cumdivnorm(benchmark, artifacts, report):
    result = benchmark.pedantic(run_fig6, args=(artifacts,), rounds=1, iterations=1)
    report(
        "fig6",
        result.format() + "\n(paper: rp = 0.61, rs = 0.79 — strong association)",
    )

    # CumDivNorm is non-decreasing by construction
    assert (np.diff(result.cumdivnorm) >= -1e-12).all()
    # observation 1: late DivNorm is stable relative to its running peak
    n = len(result.divnorm)
    late = result.divnorm[n // 2 :]
    assert late.max() <= 3.0 * max(result.divnorm.max(), 1e-30)
    # observation 2: strong positive correlation (paper's headline numbers)
    assert result.pearson > 0.49
    assert result.spearman > 0.49
