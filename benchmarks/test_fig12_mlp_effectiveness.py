"""Figure 12: success rate with vs without the MLP selection stage.

Paper shape: the MLP raises the success rate at every grid size (88.86%
mean, up to 91.36%) by keeping low-probability models out of the runtime,
at a modest normalised-performance cost (79-97%).
"""

import numpy as np

from repro.experiments import run_fig12


def test_fig12_mlp_effectiveness(benchmark, artifacts, report):
    result = benchmark.pedantic(run_fig12, args=(artifacts,), rounds=1, iterations=1)
    report("fig12", result.format() + "\n(paper: with-MLP mean 88.86%, higher everywhere)")

    assert len(result.rows) == len(artifacts.scale.grid_sizes)
    for r in result.rows:
        assert 0.0 <= r.success_with_mlp <= 1.0
        assert 0.0 <= r.success_without_mlp <= 1.0
        assert r.perf_with_over_without > 0
    with_mean = np.mean([r.success_with_mlp for r in result.rows])
    without_mean = np.mean([r.success_without_mlp for r in result.rows])
    # headline: the MLP does not hurt success on average (paper: it helps)
    assert with_mean >= without_mean - 0.25
