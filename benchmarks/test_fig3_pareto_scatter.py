"""Figure 3: the model family's (time, quality) scatter and Pareto front.

Paper shape: 133 models spread over the trade-off plane, 14 selected on the
front (lowest time, lowest loss, or both).
"""

import numpy as np

from repro.experiments import run_fig3


def test_fig3_pareto_scatter(benchmark, artifacts, report):
    result = benchmark.pedantic(run_fig3, args=(artifacts,), rounds=1, iterations=1)
    report("fig3", result.format())

    assert result.n_models > result.n_selected >= 1
    selected = sorted(
        (p for p in result.points if p.selected), key=lambda p: p.time_seconds
    )
    # along the front, spending more time must buy strictly better quality
    for a, b in zip(selected, selected[1:]):
        assert b.quality_loss <= a.quality_loss
    # the front contains the family's best quality and its best time
    best_q = min(p.quality_loss for p in result.points)
    best_t = min(p.time_seconds for p in result.points)
    assert any(p.quality_loss == best_q for p in selected)
    assert any(p.time_seconds == best_t for p in selected)
